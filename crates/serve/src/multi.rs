//! Multi-source lane programs: one superstep wave answers a whole batch.
//!
//! Both programs widen a scalar per-vertex state into a small vector with
//! one *lane* per batched source, folded through the existing gather path
//! — the kernel is untouched, so a wave inherits its chunk-ordered merge
//! and stays byte-identical at any host thread count.
//!
//! # Per-lane identity contract
//!
//! A lane inside an `L`-lane batch produces **bitwise-identical** final
//! data to running that lane alone. The active frontier of a batch is the
//! *union* of the per-lane frontiers, so a vertex can be activated by one
//! lane while another lane's state there is already settled — the
//! contract holds because for both programs an *extra* activation is a
//! no-op:
//!
//! - a vertex `v` is re-activated only when some in-neighbor `u` changed
//!   in the previous superstep. If `u`'s *lane-ℓ* value did not change,
//!   lane ℓ's gather at `v` sees exactly the inputs it saw when `v` was
//!   last applied, and apply is a pure function of those inputs (SSSP's
//!   `min` is additionally idempotent against the old value), so lane ℓ's
//!   value is recomputed unchanged;
//! - if `u`'s lane-ℓ value *did* change, then in the solo lane-ℓ run `u`
//!   also changed and scattered, so `v` is active there too.
//!
//! By induction per superstep, each lane's data evolves exactly as in its
//! solo run (the solo run may converge and stop earlier; its data is
//! frozen from that point, and the batch recomputes it unchanged). The
//! proptest suite pins this end to end across partitioners and thread
//! counts.

use hetgraph_apps::pagerank::DAMPING;
use hetgraph_apps::{PageRank, Sssp};
use hetgraph_cluster::AppProfile;
use hetgraph_core::{GraphMeta, VertexId};
use hetgraph_engine::{ActiveInit, Direction, GasProgram};

/// Distance value for unreachable vertices (shared with the solo
/// [`Sssp`] program so lane extraction is directly comparable).
pub const UNREACHABLE: u32 = hetgraph_apps::sssp::UNREACHABLE;

/// Multi-source unit-weight SSSP: lane ℓ computes distances from
/// `sources[ℓ]`.
///
/// Per-edge gather work scales with the lane count (`L` work units per
/// visited edge), so the simulated cost of a wave honestly reflects the
/// widened state; the batching win comes from sharing supersteps,
/// barriers, and per-vertex overheads across lanes, not from free edges.
#[derive(Debug, Clone)]
pub struct MultiSssp {
    sources: Vec<VertexId>,
    /// `sources`, sorted for the kick-off membership test in `apply`.
    sorted: Vec<VertexId>,
}

impl MultiSssp {
    /// Lanes from `sources`, in the given lane order.
    ///
    /// # Panics
    /// Panics if `sources` is empty.
    pub fn new(sources: Vec<VertexId>) -> Self {
        assert!(!sources.is_empty(), "MultiSssp needs at least one source");
        let mut sorted = sources.clone();
        sorted.sort_unstable();
        sorted.dedup();
        MultiSssp { sources, sorted }
    }

    /// The lane sources, in lane order.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// Lane count.
    pub fn lanes(&self) -> usize {
        self.sources.len()
    }
}

impl GasProgram for MultiSssp {
    type VertexData = Vec<u32>;
    type Accum = Vec<u32>;

    fn name(&self) -> &'static str {
        "multi_sssp"
    }

    fn profile(&self) -> AppProfile {
        AppProfile {
            name: "multi_sssp".into(),
            ..Sssp::standard_profile()
        }
    }

    fn init(&self, _graph: &GraphMeta<'_>, v: VertexId) -> Vec<u32> {
        self.sources
            .iter()
            .map(|&s| if v == s { 0 } else { UNREACHABLE })
            .collect()
    }

    fn gather_direction(&self) -> Direction {
        Direction::In
    }

    fn gather(
        &self,
        _graph: &GraphMeta<'_>,
        data: &[Vec<u32>],
        _v: VertexId,
        u: VertexId,
    ) -> (Option<Vec<u32>>, f64) {
        let from = &data[u as usize];
        let work = self.sources.len() as f64;
        if from.iter().all(|&d| d == UNREACHABLE) {
            return (None, work);
        }
        let candidate: Vec<u32> = from
            .iter()
            .map(|&d| if d == UNREACHABLE { UNREACHABLE } else { d + 1 })
            .collect();
        (Some(candidate), work)
    }

    fn sum(&self, a: Vec<u32>, b: Vec<u32>) -> Vec<u32> {
        a.iter().zip(&b).map(|(&x, &y)| x.min(y)).collect()
    }

    fn apply(
        &self,
        _graph: &GraphMeta<'_>,
        v: VertexId,
        old: &Vec<u32>,
        acc: Option<Vec<u32>>,
        superstep: usize,
    ) -> (Vec<u32>, bool) {
        let new: Vec<u32> = match &acc {
            Some(a) => old.iter().zip(a).map(|(&o, &c)| o.min(c)).collect(),
            None => old.clone(),
        };
        let improved = new.iter().zip(old).any(|(&n, &o)| n < o);
        // Every source must fire its first scatter even though its own
        // distance does not change in superstep 0 (same kick-off rule as
        // the solo program).
        let kick_off = superstep == 0 && self.sorted.binary_search(&v).is_ok();
        (new, improved || kick_off)
    }

    fn scatter_direction(&self) -> Direction {
        Direction::Out
    }

    fn initial_active(&self, _graph: &GraphMeta<'_>) -> ActiveInit {
        ActiveInit::Seeds(self.sources.clone())
    }

    fn max_supersteps(&self) -> usize {
        1_000_000
    }
}

/// Multi-seed personalized PageRank: lane ℓ runs
/// `p(v) = (1 − d)·[v = seed_ℓ] + d · Σ_{u → v} p(u) / L(u)` for a fixed
/// iteration budget, with all teleport mass on the lane's own seed.
///
/// Per-edge gather work scales with the lane count, like [`MultiSssp`].
/// The fixed-iteration, scatter-on-change configuration mirrors the
/// global [`hetgraph_apps::PageRank`], so the per-lane identity argument
/// in the module docs applies unchanged (apply is a pure function of the
/// gathered accumulator).
#[derive(Debug, Clone)]
pub struct MultiPpr {
    seeds: Vec<VertexId>,
    iterations: usize,
}

impl MultiPpr {
    /// Lanes from `seeds`, each run for exactly `iterations` supersteps.
    ///
    /// # Panics
    /// Panics if `seeds` is empty or `iterations` is zero.
    pub fn new(seeds: Vec<VertexId>, iterations: usize) -> Self {
        assert!(!seeds.is_empty(), "MultiPpr needs at least one seed");
        assert!(iterations > 0, "MultiPpr needs at least one iteration");
        MultiPpr { seeds, iterations }
    }

    /// The lane seeds, in lane order.
    pub fn seeds(&self) -> &[VertexId] {
        &self.seeds
    }

    /// Lane count.
    pub fn lanes(&self) -> usize {
        self.seeds.len()
    }
}

impl GasProgram for MultiPpr {
    type VertexData = Vec<f64>;
    type Accum = Vec<f64>;

    fn name(&self) -> &'static str {
        "multi_ppr"
    }

    fn profile(&self) -> AppProfile {
        AppProfile {
            name: "multi_ppr".into(),
            ..PageRank::standard_profile()
        }
    }

    fn init(&self, _graph: &GraphMeta<'_>, v: VertexId) -> Vec<f64> {
        self.seeds
            .iter()
            .map(|&s| if v == s { 1.0 } else { 0.0 })
            .collect()
    }

    fn gather_direction(&self) -> Direction {
        Direction::In
    }

    fn gather(
        &self,
        graph: &GraphMeta<'_>,
        data: &[Vec<f64>],
        _v: VertexId,
        u: VertexId,
    ) -> (Option<Vec<f64>>, f64) {
        // u is an in-neighbor, so its out-degree is never zero here.
        let odeg = graph.out_degree(u) as f64;
        let contribution: Vec<f64> = data[u as usize].iter().map(|&p| p / odeg).collect();
        (Some(contribution), self.seeds.len() as f64)
    }

    fn sum(&self, a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
        a.iter().zip(&b).map(|(&x, &y)| x + y).collect()
    }

    fn apply(
        &self,
        _graph: &GraphMeta<'_>,
        v: VertexId,
        old: &Vec<f64>,
        acc: Option<Vec<f64>>,
        _superstep: usize,
    ) -> (Vec<f64>, bool) {
        let new: Vec<f64> = self
            .seeds
            .iter()
            .enumerate()
            .map(|(lane, &s)| {
                let gathered = acc.as_ref().map_or(0.0, |a| a[lane]);
                let teleport = if v == s { 1.0 - DAMPING } else { 0.0 };
                teleport + DAMPING * gathered
            })
            .collect();
        let changed = new
            .iter()
            .zip(old)
            .any(|(&n, &o)| n.to_bits() != o.to_bits());
        (new, changed)
    }

    fn scatter_direction(&self) -> Direction {
        Direction::Out
    }

    fn max_supersteps(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_cluster::Cluster;
    use hetgraph_core::{Edge, EdgeList, Graph};
    use hetgraph_engine::SimEngine;
    use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};

    fn test_graph() -> Graph {
        // Two loosely-coupled rings with a bridge, so different sources
        // have genuinely different reach profiles.
        let n = 24u32;
        let mut edges = Vec::new();
        for v in 0..12u32 {
            edges.push(Edge::new(v, (v + 1) % 12));
        }
        for v in 12..24u32 {
            edges.push(Edge::new(v, 12 + (v + 1 - 12) % 12));
        }
        edges.push(Edge::new(5, 17));
        Graph::from_edge_list(EdgeList::from_edges(n, edges))
    }

    fn run<P: GasProgram>(g: &Graph, p: &P) -> Vec<P::VertexData> {
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(g, &MachineWeights::uniform(2));
        SimEngine::new(&cluster).run(g, &a, p).data
    }

    #[test]
    fn multi_sssp_lanes_match_solo_runs() {
        let g = test_graph();
        let sources = vec![0u32, 17, 5];
        let multi = run(&g, &MultiSssp::new(sources.clone()));
        for (lane, &s) in sources.iter().enumerate() {
            let solo = run(&g, &Sssp::new(s));
            for v in 0..g.num_vertices() as usize {
                assert_eq!(
                    multi[v][lane], solo[v],
                    "lane {lane} (source {s}) diverged at vertex {v}"
                );
            }
        }
    }

    #[test]
    fn multi_ppr_lanes_match_single_lane_runs() {
        let g = test_graph();
        let seeds = vec![3u32, 20];
        let multi = run(&g, &MultiPpr::new(seeds.clone(), 15));
        for (lane, &s) in seeds.iter().enumerate() {
            let solo = run(&g, &MultiPpr::new(vec![s], 15));
            for v in 0..g.num_vertices() as usize {
                assert_eq!(
                    multi[v][lane].to_bits(),
                    solo[v][0].to_bits(),
                    "lane {lane} (seed {s}) diverged at vertex {v}"
                );
            }
        }
    }

    #[test]
    fn ppr_mass_concentrates_at_the_seed() {
        let g = test_graph();
        let data = run(&g, &MultiPpr::new(vec![0], 30));
        let seed_rank = data[0][0];
        assert!(
            data.iter().all(|lanes| lanes[0] <= seed_rank),
            "seed must hold the maximum personalized rank"
        );
        assert!(seed_rank > 0.15, "teleport mass missing: {seed_rank}");
    }

    #[test]
    fn duplicate_sources_share_results() {
        let g = test_graph();
        let multi = run(&g, &MultiSssp::new(vec![4, 4]));
        for lanes in &multi {
            assert_eq!(lanes[0], lanes[1]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_sources_rejected() {
        MultiSssp::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        MultiPpr::new(vec![0], 0);
    }
}
