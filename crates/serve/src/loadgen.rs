//! Deterministic open-loop load generator.
//!
//! Arrivals are generated in *simulated* time from a seeded
//! [`SplitMix64`] stream: inter-arrival gaps are uniform on
//! `[0, 2·mean)` (mean-preserving jitter — deliberately transcendental-
//! free so the schedule is bit-reproducible on any host), tenants and
//! query classes are picked by integer weighted draws, and sources/seeds
//! are uniform vertices. Open-loop means arrivals never react to
//! service times: under overload the queue genuinely builds, which is
//! what exercises admission control and fair scheduling.

use crate::request::{QueryKind, Request};
use hetgraph_core::SplitMix64;

/// Configuration of one synthetic request stream.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LoadGenConfig {
    /// RNG seed; same seed + same config = identical stream.
    pub seed: u64,
    /// Total requests to generate.
    pub requests: usize,
    /// Mean inter-arrival gap, simulated seconds.
    pub mean_interarrival_s: f64,
    /// Per-tenant offered-load shares (integer weights; tenant count is
    /// the vector length).
    pub tenant_shares: Vec<u32>,
    /// Relative share of SSSP queries in the mix.
    pub sssp_share: u32,
    /// Relative share of personalized-PageRank queries.
    pub ppr_share: u32,
    /// Relative share of k-core membership queries.
    pub kcore_share: u32,
    /// Candidate `k` values for k-core queries (picked uniformly).
    pub kcore_ks: Vec<u32>,
}

impl LoadGenConfig {
    /// A balanced two-tenant mixed workload at the given arrival rate.
    pub fn standard(seed: u64, requests: usize, mean_interarrival_s: f64) -> Self {
        LoadGenConfig {
            seed,
            requests,
            mean_interarrival_s,
            tenant_shares: vec![1, 1],
            sssp_share: 6,
            ppr_share: 3,
            kcore_share: 1,
            kcore_ks: vec![2, 3],
        }
    }

    /// Number of tenants in the stream.
    pub fn tenants(&self) -> usize {
        self.tenant_shares.len()
    }

    /// Generate the request stream for a graph of `num_vertices`
    /// vertices, sorted by arrival time with ids in arrival order.
    ///
    /// # Panics
    /// Panics on an empty tenant/share configuration, a graph with no
    /// vertices, or a non-positive mean gap.
    pub fn generate(&self, num_vertices: u32) -> Vec<Request> {
        assert!(num_vertices > 0, "graph has no vertices");
        assert!(
            self.mean_interarrival_s > 0.0,
            "mean inter-arrival must be positive"
        );
        assert!(
            !self.tenant_shares.is_empty() && self.tenant_shares.iter().any(|&s| s > 0),
            "need at least one tenant with positive share"
        );
        let class_total = self.sssp_share + self.ppr_share + self.kcore_share;
        assert!(class_total > 0, "query mix is empty");
        assert!(
            self.kcore_share == 0 || !self.kcore_ks.is_empty(),
            "k-core share needs candidate k values"
        );

        let mut rng = SplitMix64::new(self.seed);
        let mut now = 0.0f64;
        let mut requests = Vec::with_capacity(self.requests);
        for id in 0..self.requests as u64 {
            now += 2.0 * self.mean_interarrival_s * rng.next_f64();
            let tenant = weighted_pick(&mut rng, &self.tenant_shares);
            let class_roll = (rng.next_u64() % u64::from(class_total)) as u32;
            let vertex = (rng.next_u64() % u64::from(num_vertices)) as u32;
            let kind = if class_roll < self.sssp_share {
                QueryKind::Sssp { source: vertex }
            } else if class_roll < self.sssp_share + self.ppr_share {
                QueryKind::Ppr { seed: vertex }
            } else {
                let k = self.kcore_ks[(rng.next_u64() % self.kcore_ks.len() as u64) as usize];
                QueryKind::KCoreMember { k, vertex }
            };
            requests.push(Request {
                id,
                tenant,
                kind,
                arrival_s: now,
            });
        }
        requests
    }
}

/// Integer weighted draw over `shares` (sum must fit u64 and be > 0).
fn weighted_pick(rng: &mut SplitMix64, shares: &[u32]) -> usize {
    let total: u64 = shares.iter().map(|&s| u64::from(s)).sum();
    let mut roll = rng.next_u64() % total;
    for (i, &s) in shares.iter().enumerate() {
        let s = u64::from(s);
        if roll < s {
            return i;
        }
        roll -= s;
    }
    unreachable!("roll below total implies a hit")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_the_stream() {
        let cfg = LoadGenConfig::standard(7, 500, 0.01);
        assert_eq!(cfg.generate(1000), cfg.generate(1000));
    }

    #[test]
    fn different_seeds_differ() {
        let a = LoadGenConfig::standard(1, 200, 0.01).generate(1000);
        let b = LoadGenConfig::standard(2, 200, 0.01).generate(1000);
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_sorted_with_sequential_ids() {
        let stream = LoadGenConfig::standard(42, 300, 0.02).generate(500);
        assert_eq!(stream.len(), 300);
        for (i, pair) in stream.windows(2).enumerate() {
            assert!(pair[0].arrival_s <= pair[1].arrival_s, "at {i}");
        }
        for (i, r) in stream.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn mean_gap_lands_near_the_target() {
        let cfg = LoadGenConfig::standard(9, 4000, 0.01);
        let stream = cfg.generate(1000);
        let span = stream.last().unwrap().arrival_s;
        let mean = span / stream.len() as f64;
        assert!((mean - 0.01).abs() < 0.001, "observed mean gap {mean}");
    }

    #[test]
    fn shares_steer_tenants_and_classes() {
        let mut cfg = LoadGenConfig::standard(3, 3000, 0.01);
        cfg.tenant_shares = vec![9, 1];
        let stream = cfg.generate(1000);
        let t0 = stream.iter().filter(|r| r.tenant == 0).count();
        assert!(t0 > 2400, "9:1 shares gave tenant 0 only {t0}/3000");
        let sssp = stream
            .iter()
            .filter(|r| matches!(r.kind, QueryKind::Sssp { .. }))
            .count();
        let kcore = stream
            .iter()
            .filter(|r| matches!(r.kind, QueryKind::KCoreMember { .. }))
            .count();
        assert!(
            sssp > kcore,
            "mix shares ignored: {sssp} sssp vs {kcore} kcore"
        );
        // Every k-core query uses a configured k.
        assert!(stream.iter().all(|r| match r.kind {
            QueryKind::KCoreMember { k, .. } => cfg.kcore_ks.contains(&k),
            _ => true,
        }));
    }
}
