//! The simulated-time serving loop: queue → batcher → wave → extraction.
//!
//! [`Server::serve`] drives a seeded request stream against one shared
//! [`DistributedGraph`]: arrivals are admitted against the bounded
//! tenant queues, the batcher merges compatible queued queries into one
//! multi-source superstep wave (executed by the unmodified kernel via
//! [`SimEngine::run_on_with_threads`]), and per-request responses are
//! extracted from the wave's lanes. The *control plane* — admission,
//! window arithmetic, batch formation, latency accounting — runs
//! serially in simulated time; only the wave's gather/apply/scatter
//! fan-out uses host threads. Reports are therefore byte-identical at
//! any host thread count, which the serve perf gate enforces.
//!
//! Timeline semantics: when the queue is idle the clock jumps to the
//! next arrival and holds a *batch window* of `batch_window_s` open to
//! collect near-simultaneous requests; under backlog, waves run
//! back-to-back with no added window delay. Requests arriving while a
//! wave executes are admitted when it completes (single simulated
//! execution context — the wave owns the cluster).

use hetgraph_apps::KCore;
use hetgraph_cluster::Cluster;
use hetgraph_core::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use hetgraph_core::obs::{Recorder, TimeDomain, TraceEvent};
use hetgraph_core::{hash64, rng::hash_combine, VertexId};
use hetgraph_engine::{DistributedGraph, SimEngine};

use crate::multi::{MultiPpr, MultiSssp, UNREACHABLE};
use crate::queue::{Batch, ServeQueue};
use crate::request::{ClassKey, Completion, QueryKind, Request, ShedRecord};

/// Serving-loop configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServeConfig {
    /// Batch window: how long an idle batcher holds the door open after
    /// the first arrival, simulated seconds.
    pub batch_window_s: f64,
    /// Maximum requests per wave (lane cap for SSSP/PPR waves).
    pub max_batch: usize,
    /// Per-tenant queue depth budget (admission control).
    pub queue_budget: usize,
    /// Tenant scheduling weights; the length is the tenant count.
    pub tenant_weights: Vec<u32>,
    /// Supersteps per personalized-PageRank wave.
    pub ppr_iterations: usize,
    /// Host threads for wave execution (control plane stays serial).
    pub threads: usize,
}

impl ServeConfig {
    /// Sensible defaults for `tenants` equally-weighted tenants.
    pub fn standard(tenants: usize) -> Self {
        ServeConfig {
            batch_window_s: 0.05,
            max_batch: 16,
            queue_budget: 64,
            tenant_weights: vec![1; tenants.max(1)],
            ppr_iterations: 10,
            threads: 1,
        }
    }
}

/// One executed wave.
#[derive(Debug, Clone, serde::Serialize)]
pub struct WaveRecord {
    /// Wave sequence number.
    pub index: usize,
    /// Batching class label (`sssp`, `ppr`, `kcore<k>`).
    pub class: String,
    /// Simulated start time, seconds.
    pub start_s: f64,
    /// Simulated kernel makespan, seconds.
    pub makespan_s: f64,
    /// Requests served by the wave.
    pub requests: usize,
    /// Program lanes the wave ran (deduplicated sources/seeds; 1 for
    /// k-core waves, which share a single fixed point).
    pub lanes: usize,
    /// Supersteps the wave's kernel executed.
    pub supersteps: usize,
}

/// Everything one serving run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Served requests, in completion order.
    pub completions: Vec<Completion>,
    /// Requests shed by admission control, in arrival order.
    pub shed: Vec<ShedRecord>,
    /// Per-tenant served counts.
    pub per_tenant_served: Vec<u64>,
    /// Per-tenant shed counts.
    pub per_tenant_shed: Vec<u64>,
    /// Executed waves, in order.
    pub waves: Vec<WaveRecord>,
    /// Simulated time at which the last wave finished (or the last
    /// arrival, if nothing was served), seconds.
    pub sim_duration_s: f64,
    /// Order-sensitive digest of batch composition and responses
    /// (classes, lane members, request ids, result values — no simulated
    /// times, so the digest is stable across hosts).
    pub composition_digest: u64,
}

impl ServeReport {
    /// Latency of the `q`-quantile served request (nearest-rank over the
    /// sorted latency list), simulated seconds.
    pub fn latency_quantile_s(&self, q: f64) -> Option<f64> {
        if self.completions.is_empty() {
            return None;
        }
        let mut latencies: Vec<f64> = self.completions.iter().map(Completion::latency_s).collect();
        latencies.sort_by(f64::total_cmp);
        let idx = ((latencies.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(latencies[idx])
    }

    /// Mean served latency, simulated seconds.
    pub fn mean_latency_s(&self) -> Option<f64> {
        if self.completions.is_empty() {
            return None;
        }
        Some(
            self.completions
                .iter()
                .map(Completion::latency_s)
                .sum::<f64>()
                / self.completions.len() as f64,
        )
    }

    /// Served requests per simulated second.
    pub fn throughput_rps(&self) -> f64 {
        if self.sim_duration_s <= 0.0 {
            return 0.0;
        }
        self.completions.len() as f64 / self.sim_duration_s
    }

    /// Total served requests.
    pub fn served(&self) -> usize {
        self.completions.len()
    }
}

/// Pre-registered metric handles (no-ops on the disabled registry).
struct ServeMetrics {
    queue_depth: Gauge,
    batch_size: Histogram,
    batch_lanes: Histogram,
    shed_total: Counter,
    wave_total: Counter,
    tenant_served: Vec<Counter>,
}

impl ServeMetrics {
    fn new(metrics: &MetricsRegistry, tenants: usize) -> Self {
        ServeMetrics {
            queue_depth: metrics.gauge("serve/queue_depth", TimeDomain::Sim),
            batch_size: metrics.histogram("serve/batch_size", TimeDomain::Sim),
            batch_lanes: metrics.histogram("serve/batch_lanes", TimeDomain::Sim),
            shed_total: metrics.counter("serve/shed_total", TimeDomain::Sim),
            wave_total: metrics.counter("serve/wave_total", TimeDomain::Sim),
            tenant_served: (0..tenants)
                .map(|t| {
                    metrics.counter(&format!("serve/tenant/{t}/served_total"), TimeDomain::Sim)
                })
                .collect(),
        }
    }
}

/// Splices per-wave kernel traces into one continuous serving timeline:
/// sim-domain timestamps are offset by the wave's start time (each
/// kernel run starts its own clock at zero); wall-domain events pass
/// through untouched. The offset is plain `f64` bit storage — waves run
/// one at a time, and concurrent kernel workers only emit wall events.
struct ShiftRecorder<'a> {
    inner: &'a dyn Recorder,
    offset_us: std::sync::atomic::AtomicU64,
}

impl<'a> ShiftRecorder<'a> {
    fn new(inner: &'a dyn Recorder) -> Self {
        ShiftRecorder {
            inner,
            offset_us: std::sync::atomic::AtomicU64::new(0.0f64.to_bits()),
        }
    }

    fn set_offset_s(&self, offset_s: f64) {
        self.offset_us.store(
            (offset_s * 1e6).to_bits(),
            std::sync::atomic::Ordering::Relaxed,
        );
    }

    fn shift(&self, mut event: TraceEvent) -> TraceEvent {
        if event.domain == TimeDomain::Sim {
            event.ts_us +=
                f64::from_bits(self.offset_us.load(std::sync::atomic::Ordering::Relaxed));
        }
        event
    }
}

impl Recorder for ShiftRecorder<'_> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&self, event: TraceEvent) {
        self.inner.record(self.shift(event));
    }

    fn record_batch(&self, events: &mut Vec<TraceEvent>) {
        for e in events.iter_mut() {
            *e = self.shift(e.clone());
        }
        self.inner.record_batch(events);
    }

    fn now_us(&self) -> f64 {
        self.inner.now_us()
    }
}

/// The serving front end: owns the instrumentation wiring and runs
/// request streams over a shared partitioned graph.
pub struct Server<'a> {
    cluster: &'a Cluster,
    recorder: &'a dyn Recorder,
    metrics: &'a MetricsRegistry,
}

impl<'a> Server<'a> {
    /// A server for `cluster` with instrumentation disabled.
    pub fn new(cluster: &'a Cluster) -> Self {
        Server {
            cluster,
            recorder: &hetgraph_core::obs::NOOP,
            metrics: &hetgraph_core::metrics::NOOP,
        }
    }

    /// Attach a [`Recorder`]: the serving loop emits `wave/<class>`
    /// spans and queue-depth gauges, and each wave's kernel trace is
    /// time-shifted onto the serving timeline, so `hetgraph report`
    /// analyzes a serve trace like any simulate trace.
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attach a [`MetricsRegistry`] (queue-depth gauge, batch-size
    /// histograms, per-tenant served counters, shed counter — all
    /// sim-domain, recorded from the serial control plane).
    pub fn with_metrics(mut self, metrics: &'a MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Serve `requests` (sorted by arrival, ids in arrival order — the
    /// load generator's output contract) over `dist`.
    ///
    /// # Panics
    /// Panics if the request stream is unsorted, the config has no
    /// tenants, or a query references a vertex outside the graph.
    pub fn serve(
        &self,
        dist: &DistributedGraph<'_>,
        cfg: &ServeConfig,
        requests: &[Request],
    ) -> ServeReport {
        assert!(!cfg.tenant_weights.is_empty(), "config has no tenants");
        assert!(
            requests
                .windows(2)
                .all(|w| w[0].arrival_s <= w[1].arrival_s),
            "request stream must be sorted by arrival time"
        );
        let tenants = cfg.tenant_weights.len();
        let m = ServeMetrics::new(self.metrics, tenants);
        let shift = ShiftRecorder::new(self.recorder);
        let engine = SimEngine::new(self.cluster)
            .with_recorder(&shift)
            .with_metrics(self.metrics);
        // Serve-level trace lane: one past the cluster-wide track the
        // kernel uses for its communication barrier.
        let serve_track = self.cluster.len() as u32 + 1;

        let mut queue = ServeQueue::new(cfg.tenant_weights.clone(), cfg.queue_budget);
        let mut now = 0.0f64;
        let mut cursor = 0usize;
        let mut report = ServeReport {
            completions: Vec::new(),
            shed: Vec::new(),
            per_tenant_served: vec![0; tenants],
            per_tenant_shed: vec![0; tenants],
            waves: Vec::new(),
            sim_duration_s: 0.0,
            composition_digest: hash64(0x5e22e),
        };

        while cursor < requests.len() || !queue.is_empty() {
            if queue.is_empty() && cursor < requests.len() {
                // Idle: jump to the next arrival and hold the batch
                // window open to collect near-simultaneous requests.
                now = now.max(requests[cursor].arrival_s) + cfg.batch_window_s;
            }
            cursor = self.admit_until(&mut queue, &m, &mut report, requests, cursor, now);
            let Some(batch) = queue.next_batch(cfg.max_batch) else {
                continue;
            };
            m.queue_depth.set(queue.total_depth() as f64);
            m.batch_size.observe(batch.requests.len() as f64);
            m.wave_total.inc();
            for r in &batch.requests {
                m.tenant_served[r.tenant].inc();
            }

            shift.set_offset_s(now);
            let wave = execute_wave(&engine, dist, cfg, &batch, now, report.waves.len());
            if self.recorder.enabled() {
                self.recorder.record(TraceEvent::sim_span(
                    format!("wave/{}", wave.record.class),
                    "serve",
                    serve_track,
                    now,
                    wave.record.makespan_s,
                ));
                self.recorder.record(TraceEvent::sim_gauge(
                    "serve/queue_depth",
                    serve_track,
                    now,
                    queue.total_depth() as f64,
                ));
            }
            m.batch_lanes.observe(wave.record.lanes as f64);
            now += wave.record.makespan_s;
            report.sim_duration_s = now;

            // Fold the wave into the composition digest: class, lane
            // membership, and every (request, response) pair — this is
            // what "deterministic batch composition" gates on.
            let mut d = report.composition_digest;
            d = hash_combine(d, wave.record.index as u64);
            d = hash_combine(d, batch.class.digest_tag());
            d = hash_combine(d, wave.record.lanes as u64);
            for (req, &result) in batch.requests.iter().zip(&wave.results) {
                d = hash_combine(d, req.id);
                d = hash_combine(d, result);
                report.per_tenant_served[req.tenant] += 1;
                report.completions.push(Completion {
                    id: req.id,
                    tenant: req.tenant,
                    class: batch.class,
                    arrival_s: req.arrival_s,
                    wave_start_s: wave.record.start_s,
                    finish_s: now,
                    result,
                });
            }
            report.composition_digest = d;
            report.waves.push(wave.record);
        }
        if let Some(last) = requests.last() {
            report.sim_duration_s = report.sim_duration_s.max(last.arrival_s);
        }
        m.queue_depth.set(0.0);
        report
    }

    /// Admit every request with `arrival_s <= now`, recording sheds.
    fn admit_until(
        &self,
        queue: &mut ServeQueue,
        m: &ServeMetrics,
        report: &mut ServeReport,
        requests: &[Request],
        mut cursor: usize,
        now: f64,
    ) -> usize {
        while cursor < requests.len() && requests[cursor].arrival_s <= now {
            let req = &requests[cursor];
            if queue.admit(req.clone()).is_err() {
                report.per_tenant_shed[req.tenant] += 1;
                report.shed.push(ShedRecord {
                    id: req.id,
                    tenant: req.tenant,
                    arrival_s: req.arrival_s,
                });
                m.shed_total.inc();
            }
            cursor += 1;
        }
        m.queue_depth.set(queue.total_depth() as f64);
        cursor
    }
}

/// A wave's record plus per-request response values (aligned with the
/// batch's request order).
struct WaveOutcome {
    record: WaveRecord,
    results: Vec<u64>,
}

/// Run one batch as a single superstep wave and extract responses.
fn execute_wave(
    engine: &SimEngine<'_>,
    dist: &DistributedGraph<'_>,
    cfg: &ServeConfig,
    batch: &Batch,
    start_s: f64,
    index: usize,
) -> WaveOutcome {
    let n = dist.graph().num_vertices() as usize;
    match batch.class {
        ClassKey::Sssp => {
            let (lane_of, sources) = assign_lanes(&batch.requests, |k| match k {
                QueryKind::Sssp { source } => *source,
                _ => unreachable!("class-pure batch"),
            });
            let program = MultiSssp::new(sources);
            let out = engine.run_on_with_threads(dist, &program, cfg.threads);
            // One pass over the data: per-lane reachable counts.
            let mut reach = vec![0u64; program.lanes()];
            for lanes in &out.data {
                for (l, &d) in lanes.iter().enumerate() {
                    if d != UNREACHABLE {
                        reach[l] += 1;
                    }
                }
            }
            WaveOutcome {
                record: WaveRecord {
                    index,
                    class: batch.class.label(),
                    start_s,
                    makespan_s: out.report.makespan_s,
                    requests: batch.requests.len(),
                    lanes: program.lanes(),
                    supersteps: out.report.supersteps,
                },
                results: lane_of.iter().map(|&l| reach[l]).collect(),
            }
        }
        ClassKey::Ppr => {
            let (lane_of, seeds) = assign_lanes(&batch.requests, |k| match k {
                QueryKind::Ppr { seed } => *seed,
                _ => unreachable!("class-pure batch"),
            });
            let program = MultiPpr::new(seeds, cfg.ppr_iterations);
            let out = engine.run_on_with_threads(dist, &program, cfg.threads);
            // Rank-mass digest per lane, folded in vertex order (fixed
            // summation order = deterministic bits).
            let mut mass = vec![0.0f64; program.lanes()];
            for lanes in &out.data {
                for (l, &p) in lanes.iter().enumerate() {
                    mass[l] += p;
                }
            }
            WaveOutcome {
                record: WaveRecord {
                    index,
                    class: batch.class.label(),
                    start_s,
                    makespan_s: out.report.makespan_s,
                    requests: batch.requests.len(),
                    lanes: program.lanes(),
                    supersteps: out.report.supersteps,
                },
                results: lane_of.iter().map(|&l| mass[l].to_bits()).collect(),
            }
        }
        ClassKey::KCore(k) => {
            let program = KCore::new(k);
            let out = engine.run_on_with_threads(dist, &program, cfg.threads);
            let results = batch
                .requests
                .iter()
                .map(|r| match &r.kind {
                    QueryKind::KCoreMember { vertex, .. } => {
                        assert!((*vertex as usize) < n, "query vertex out of range");
                        u64::from(out.data[*vertex as usize])
                    }
                    _ => unreachable!("class-pure batch"),
                })
                .collect();
            WaveOutcome {
                record: WaveRecord {
                    index,
                    class: batch.class.label(),
                    start_s,
                    makespan_s: out.report.makespan_s,
                    requests: batch.requests.len(),
                    lanes: 1,
                    supersteps: out.report.supersteps,
                },
                results,
            }
        }
    }
}

/// Map each request to a program lane, deduplicating repeated
/// sources/seeds (two queries for the same source share one lane).
/// Returns (per-request lane index, lane vertex list in first-seen
/// order).
fn assign_lanes<F>(requests: &[Request], vertex_of: F) -> (Vec<usize>, Vec<VertexId>)
where
    F: Fn(&QueryKind) -> VertexId,
{
    let mut lanes: Vec<VertexId> = Vec::new();
    let mut lane_of = Vec::with_capacity(requests.len());
    for r in requests {
        let v = vertex_of(&r.kind);
        let lane = match lanes.iter().position(|&x| x == v) {
            Some(l) => l,
            None => {
                lanes.push(v);
                lanes.len() - 1
            }
        };
        lane_of.push(lane);
    }
    (lane_of, lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::LoadGenConfig;
    use hetgraph_core::{Edge, EdgeList, Graph};
    use hetgraph_gen::PowerLawConfig;
    use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};

    fn fixture() -> (Graph, Cluster) {
        (PowerLawConfig::new(600, 2.1).generate(11), Cluster::case2())
    }

    fn partition(g: &Graph) -> hetgraph_partition::PartitionAssignment {
        RandomHash::new().partition(g, &MachineWeights::uniform(2))
    }

    #[test]
    fn serves_every_request_when_budget_allows() {
        let (g, cluster) = fixture();
        let a = partition(&g);
        let dist = DistributedGraph::new(&g, &a).unwrap();
        let stream = LoadGenConfig::standard(5, 60, 0.05).generate(g.num_vertices());
        let mut cfg = ServeConfig::standard(2);
        cfg.queue_budget = 1000;
        let report = Server::new(&cluster).serve(&dist, &cfg, &stream);
        assert_eq!(report.served(), 60);
        assert!(report.shed.is_empty());
        assert_eq!(report.per_tenant_served.iter().sum::<u64>(), 60);
        assert!(report.throughput_rps() > 0.0);
        assert!(report.latency_quantile_s(0.5).unwrap() > 0.0);
        // Completion times are consistent.
        for c in &report.completions {
            assert!(c.finish_s >= c.arrival_s);
            assert!(c.finish_s > c.wave_start_s);
        }
    }

    #[test]
    fn report_is_identical_at_any_thread_count() {
        let (g, cluster) = fixture();
        let a = partition(&g);
        let dist = DistributedGraph::new(&g, &a).unwrap();
        let stream = LoadGenConfig::standard(7, 80, 0.02).generate(g.num_vertices());
        let run = |threads: usize| {
            let mut cfg = ServeConfig::standard(2);
            cfg.threads = threads;
            Server::new(&cluster).serve(&dist, &cfg, &stream)
        };
        let r1 = run(1);
        for threads in [2, 4] {
            let rt = run(threads);
            assert_eq!(r1.composition_digest, rt.composition_digest);
            assert_eq!(r1.completions, rt.completions, "threads={threads}");
            assert_eq!(r1.sim_duration_s, rt.sim_duration_s);
        }
    }

    #[test]
    fn waves_are_class_pure_and_capped() {
        let (g, cluster) = fixture();
        let a = partition(&g);
        let dist = DistributedGraph::new(&g, &a).unwrap();
        // Dense arrivals force batching.
        let stream = LoadGenConfig::standard(3, 120, 0.001).generate(g.num_vertices());
        let mut cfg = ServeConfig::standard(2);
        cfg.max_batch = 8;
        cfg.queue_budget = 1000;
        let report = Server::new(&cluster).serve(&dist, &cfg, &stream);
        assert!(report.waves.iter().any(|w| w.requests > 1), "no batching");
        assert!(report.waves.iter().all(|w| w.requests <= 8));
        assert!(report.waves.iter().all(|w| w.lanes <= w.requests.max(1)));
    }

    #[test]
    fn sheds_surface_under_a_tiny_budget() {
        let (g, cluster) = fixture();
        let a = partition(&g);
        let dist = DistributedGraph::new(&g, &a).unwrap();
        let stream = LoadGenConfig::standard(9, 200, 0.0001).generate(g.num_vertices());
        let mut cfg = ServeConfig::standard(2);
        cfg.queue_budget = 2;
        cfg.max_batch = 2;
        let report = Server::new(&cluster).serve(&dist, &cfg, &stream);
        assert!(!report.shed.is_empty(), "overload must shed");
        assert_eq!(
            report.served() + report.shed.len(),
            200,
            "every request is either served or shed"
        );
    }

    #[test]
    fn batched_sssp_response_matches_solo_run() {
        // One reachability query on a known path graph.
        let n = 10u32;
        let edges = (0..n - 1).map(|v| Edge::new(v, v + 1)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let cluster = Cluster::case2();
        let a = partition(&g);
        let dist = DistributedGraph::new(&g, &a).unwrap();
        let stream = vec![
            Request {
                id: 0,
                tenant: 0,
                kind: QueryKind::Sssp { source: 3 },
                arrival_s: 0.0,
            },
            Request {
                id: 1,
                tenant: 1,
                kind: QueryKind::Sssp { source: 0 },
                arrival_s: 0.0,
            },
        ];
        let report = Server::new(&cluster).serve(&dist, &ServeConfig::standard(2), &stream);
        // Vertex 3 reaches 3..10 (7 vertices), vertex 0 reaches all 10.
        assert_eq!(report.completions[0].result, 7);
        assert_eq!(report.completions[1].result, 10);
        assert_eq!(report.waves.len(), 1, "same-class queries share a wave");
        assert_eq!(report.waves[0].lanes, 2);
    }

    #[test]
    fn trace_and_metrics_capture_the_serving_run() {
        let (g, cluster) = fixture();
        let a = partition(&g);
        let dist = DistributedGraph::new(&g, &a).unwrap();
        let stream = LoadGenConfig::standard(1, 40, 0.01).generate(g.num_vertices());
        let recorder = hetgraph_core::obs::TraceRecorder::new();
        let metrics = MetricsRegistry::new();
        let report = Server::new(&cluster)
            .with_recorder(&recorder)
            .with_metrics(&metrics)
            .serve(&dist, &ServeConfig::standard(2), &stream);
        let events = recorder.take_events();
        let wave_spans: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.name.starts_with("wave/"))
            .collect();
        assert_eq!(wave_spans.len(), report.waves.len());
        // Wave spans sit on the serving timeline, in order.
        for pair in wave_spans.windows(2) {
            assert!(pair[0].ts_us <= pair[1].ts_us);
        }
        // Kernel spans were time-shifted onto the same timeline: no
        // sim-domain event may start before the first wave does.
        let first_wave_ts = wave_spans[0].ts_us;
        assert!(
            events
                .iter()
                .filter(|e| e.domain == TimeDomain::Sim
                    && e.kind == hetgraph_core::obs::EventKind::Span)
                .all(|e| e.ts_us >= first_wave_ts - 1e-9)
        );
        let snap = metrics.snapshot_sim();
        assert_eq!(
            snap.counter_value("serve/wave_total"),
            Some(report.waves.len() as u64)
        );
        let served: u64 = (0..2)
            .filter_map(|t| snap.counter_value(&format!("serve/tenant/{t}/served_total")))
            .sum();
        assert_eq!(served, report.served() as u64);
        assert!(snap.histogram("serve/batch_size").is_some());
    }
}
