//! Request, query-class, and completion types for the serving layer.

use hetgraph_core::VertexId;

/// One graph query a tenant submits to the serving front end.
///
/// Every variant is a *point lookup* against a shared partitioned graph:
/// the response is a compact scalar, not a full per-vertex vector, which
/// is what makes multiplexing thousands of requests over one
/// `DistributedGraph` meaningful.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum QueryKind {
    /// Unit-weight single-source shortest paths from `source`; the
    /// response is the number of reachable vertices.
    Sssp {
        /// Source vertex of the traversal.
        source: VertexId,
    },
    /// Personalized PageRank with all teleport mass on `seed`; the
    /// response digests the converged rank mass (bit pattern of the rank
    /// sum, folded in vertex order — deterministic at any thread count).
    Ppr {
        /// The personalization seed.
        seed: VertexId,
    },
    /// Whether `vertex` survives `k`-core peeling.
    KCoreMember {
        /// Core order (`k >= 1`).
        k: u32,
        /// Vertex whose membership is queried.
        vertex: VertexId,
    },
}

impl QueryKind {
    /// The batching class this query belongs to.
    pub fn class(&self) -> ClassKey {
        match self {
            QueryKind::Sssp { .. } => ClassKey::Sssp,
            QueryKind::Ppr { .. } => ClassKey::Ppr,
            QueryKind::KCoreMember { k, .. } => ClassKey::KCore(*k),
        }
    }
}

/// Compatibility key for the batcher: two queued queries may share one
/// superstep wave exactly when their class keys are equal.
///
/// SSSP and PPR queries batch as independent *lanes* of one multi-source
/// program; k-core queries batch per `k` because every same-`k` query is
/// answered by the same peeling fixed point (a batch of them costs one
/// run regardless of size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum ClassKey {
    /// Multi-source SSSP lanes.
    Sssp,
    /// Personalized-PageRank lanes.
    Ppr,
    /// `k`-core membership at one fixed `k`.
    KCore(u32),
}

impl ClassKey {
    /// Short label for traces and wave records.
    pub fn label(&self) -> String {
        match self {
            ClassKey::Sssp => "sssp".to_string(),
            ClassKey::Ppr => "ppr".to_string(),
            ClassKey::KCore(k) => format!("kcore{k}"),
        }
    }

    /// Stable integer encoding for the composition digest.
    pub(crate) fn digest_tag(&self) -> u64 {
        match self {
            ClassKey::Sssp => 1,
            ClassKey::Ppr => 2,
            ClassKey::KCore(k) => 3 + u64::from(*k),
        }
    }
}

/// One admitted or offered request.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Request {
    /// Arrival sequence number: assigned in nondecreasing arrival order,
    /// unique across the run. Ties on `arrival_s` break by `id`.
    pub id: u64,
    /// Owning tenant (index into the configured weight vector).
    pub tenant: usize,
    /// The query itself.
    pub kind: QueryKind,
    /// Simulated arrival time, seconds.
    pub arrival_s: f64,
}

/// A served request with its timing and response digest.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: usize,
    /// Batching class the request was served under.
    pub class: ClassKey,
    /// Simulated arrival time, seconds.
    pub arrival_s: f64,
    /// Simulated time the wave containing this request started.
    pub wave_start_s: f64,
    /// Simulated completion time (wave start + wave makespan).
    pub finish_s: f64,
    /// Scalar response digest (see [`QueryKind`] for the encoding).
    pub result: u64,
}

impl Completion {
    /// Queueing + batching + execution latency in simulated seconds.
    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }
}

/// A request refused by admission control.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ShedRecord {
    /// Request id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: usize,
    /// Simulated arrival time, seconds.
    pub arrival_s: f64,
}

/// Typed serving-layer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control shed the request: the tenant's queue is at its
    /// depth budget. In-flight batches are unaffected — the request was
    /// never enqueued.
    QueueFull {
        /// Tenant whose queue is full.
        tenant: usize,
        /// Queue depth at rejection time.
        depth: usize,
        /// The configured per-tenant depth budget.
        budget: usize,
    },
    /// The request references a tenant outside the configured range.
    UnknownTenant {
        /// The offending tenant index.
        tenant: usize,
        /// Number of configured tenants.
        tenants: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull {
                tenant,
                depth,
                budget,
            } => write!(
                f,
                "tenant {tenant} queue full: depth {depth} at budget {budget}, request shed"
            ),
            ServeError::UnknownTenant { tenant, tenants } => {
                write!(f, "unknown tenant {tenant}: {tenants} tenant(s) configured")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_keys_partition_queries() {
        assert_eq!(QueryKind::Sssp { source: 3 }.class(), ClassKey::Sssp);
        assert_eq!(QueryKind::Ppr { seed: 3 }.class(), ClassKey::Ppr);
        assert_eq!(
            QueryKind::KCoreMember { k: 2, vertex: 0 }.class(),
            ClassKey::KCore(2)
        );
        // Different k never batches together.
        assert_ne!(ClassKey::KCore(2), ClassKey::KCore(3));
    }

    #[test]
    fn digest_tags_are_distinct() {
        let tags = [
            ClassKey::Sssp.digest_tag(),
            ClassKey::Ppr.digest_tag(),
            ClassKey::KCore(1).digest_tag(),
            ClassKey::KCore(2).digest_tag(),
        ];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn queue_full_error_mentions_budget() {
        let e = ServeError::QueueFull {
            tenant: 1,
            depth: 64,
            budget: 64,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("tenant 1") && msg.contains("budget 64"),
            "{msg}"
        );
    }
}
