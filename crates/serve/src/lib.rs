//! # hetgraph-serve
//!
//! The graph-query serving layer: the engine as a long-running service.
//!
//! Everything else in the workspace is batch — one `simulate`/`submit`
//! job per invocation. This crate multiplexes thousands of concurrent
//! point queries (per-source SSSP reachability, personalized-PageRank
//! seeds, k-core membership) over **one** shared partitioned
//! [`DistributedGraph`](hetgraph_engine::DistributedGraph):
//!
//! - [`request`] — query/request/completion types and the typed
//!   [`ServeError`] admission control returns on shed;
//! - [`queue`] — bounded per-tenant queues with stride-style weighted
//!   fair batch formation, all integer arithmetic, fully deterministic;
//! - [`multi`] — the multi-source lane programs ([`MultiSssp`],
//!   [`MultiPpr`]) that let one superstep wave answer a whole batch,
//!   with a bitwise per-lane identity contract (see the module docs);
//! - [`loadgen`] — a seeded open-loop arrival generator in simulated
//!   time;
//! - [`server`] — the serving loop: queue → batcher → wave →
//!   extraction, instrumented through the workspace's `MetricsRegistry`
//!   and `Recorder` so `hetgraph report` can analyze a serve trace.
//!
//! The control plane is serial and simulated-time; waves execute on the
//! unmodified superstep kernel, so a whole serving run is byte-identical
//! at any host thread count — the property the `BENCH_serve.json` CI
//! gate pins.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod loadgen;
pub mod multi;
pub mod queue;
pub mod request;
pub mod server;

pub use loadgen::LoadGenConfig;
pub use multi::{MultiPpr, MultiSssp, UNREACHABLE};
pub use queue::{Batch, ServeQueue};
pub use request::{ClassKey, Completion, QueryKind, Request, ServeError, ShedRecord};
pub use server::{ServeConfig, ServeReport, Server, WaveRecord};
