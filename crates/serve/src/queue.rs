//! Bounded tenant queues, admission control, and weighted fair batching.
//!
//! The queue is organized per `(tenant, class)`: each tenant owns one
//! FIFO sub-queue per batching class it has ever submitted to. Admission
//! control bounds the *per-tenant* total depth (a bursty tenant sheds its
//! own overflow instead of starving other tenants of queue space), and
//! batch formation is stride-style weighted fair scheduling: the next
//! lane always goes to the eligible tenant with the smallest
//! `served / weight` ratio. Everything here is integer arithmetic over
//! explicit `Vec`s — no hash-map iteration order, no floats — so batch
//! composition is deterministic for a given arrival sequence.

use crate::request::{ClassKey, Request, ServeError};
use std::collections::VecDeque;

/// One batch the scheduler formed: all requests share `class` and are
/// answered by a single superstep wave.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The shared batching class.
    pub class: ClassKey,
    /// Member requests, in scheduling order (lane order for SSSP/PPR).
    pub requests: Vec<Request>,
}

/// Bounded multi-tenant queue with weighted fair batch formation.
#[derive(Debug)]
pub struct ServeQueue {
    /// Tenant scheduling weights (larger = more lanes under contention).
    weights: Vec<u32>,
    /// Per-tenant depth budget for admission control.
    budget: usize,
    /// First-seen registry of class keys; slot index is shared by every
    /// tenant so scans iterate a deterministic order.
    classes: Vec<ClassKey>,
    /// `lanes[tenant][class_slot]` FIFO sub-queues.
    lanes: Vec<Vec<VecDeque<Request>>>,
    /// Per-tenant total queued depth (across classes).
    depth: Vec<usize>,
    /// Per-tenant requests handed to batches so far (the WFQ stride).
    served: Vec<u64>,
    /// Total requests shed by admission control.
    shed: u64,
}

impl ServeQueue {
    /// An empty queue for `weights.len()` tenants with the given
    /// per-tenant depth `budget`.
    ///
    /// # Panics
    /// Panics if `weights` is empty, any weight is zero, or the budget
    /// is zero.
    pub fn new(weights: Vec<u32>, budget: usize) -> Self {
        assert!(!weights.is_empty(), "need at least one tenant");
        assert!(
            weights.iter().all(|&w| w > 0),
            "tenant weights must be positive"
        );
        assert!(budget > 0, "queue budget must be positive");
        let tenants = weights.len();
        ServeQueue {
            weights,
            budget,
            classes: Vec::new(),
            lanes: vec![Vec::new(); tenants],
            depth: vec![0; tenants],
            served: vec![0; tenants],
            shed: 0,
        }
    }

    /// Number of configured tenants.
    pub fn tenants(&self) -> usize {
        self.weights.len()
    }

    /// Queued depth of one tenant.
    pub fn depth(&self, tenant: usize) -> usize {
        self.depth[tenant]
    }

    /// Total queued depth across tenants.
    pub fn total_depth(&self) -> usize {
        self.depth.iter().sum()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.depth.iter().all(|&d| d == 0)
    }

    /// Requests shed by admission control so far.
    pub fn shed_total(&self) -> u64 {
        self.shed
    }

    /// Per-tenant requests handed to batches so far.
    pub fn served(&self) -> &[u64] {
        &self.served
    }

    /// Slot of `key` in the class registry, allocating on first sight.
    fn class_slot(&mut self, key: ClassKey) -> usize {
        if let Some(slot) = self.classes.iter().position(|&c| c == key) {
            return slot;
        }
        self.classes.push(key);
        for tenant_lanes in &mut self.lanes {
            tenant_lanes.resize_with(self.classes.len(), VecDeque::new);
        }
        self.classes.len() - 1
    }

    /// Admit `req`, or shed it with a typed error when the tenant's
    /// queue is at budget. A shed request is never enqueued, so batches
    /// already formed (and everything still queued) are untouched.
    pub fn admit(&mut self, req: Request) -> Result<(), ServeError> {
        let tenant = req.tenant;
        if tenant >= self.weights.len() {
            self.shed += 1;
            return Err(ServeError::UnknownTenant {
                tenant,
                tenants: self.weights.len(),
            });
        }
        if self.depth[tenant] >= self.budget {
            self.shed += 1;
            return Err(ServeError::QueueFull {
                tenant,
                depth: self.depth[tenant],
                budget: self.budget,
            });
        }
        let slot = self.class_slot(req.kind.class());
        self.lanes[tenant][slot].push_back(req);
        self.depth[tenant] += 1;
        Ok(())
    }

    /// The class of the globally oldest queued request (every sub-queue
    /// is FIFO in arrival order, so the oldest request is at some head).
    fn wave_class(&self) -> Option<(usize, ClassKey)> {
        let mut best: Option<(u64, usize, ClassKey)> = None;
        for (slot, &class) in self.classes.iter().enumerate() {
            for tenant_lanes in &self.lanes {
                if let Some(head) = tenant_lanes[slot].front() {
                    if best.is_none_or(|(id, _, _)| head.id < id) {
                        best = Some((head.id, slot, class));
                    }
                }
            }
        }
        best.map(|(_, slot, class)| (slot, class))
    }

    /// WFQ pick: the eligible tenant minimizing `served / weight`
    /// (exact integer cross-multiplication; ties break toward the lower
    /// tenant index).
    fn pick_tenant(&self, slot: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for t in 0..self.weights.len() {
            if self.lanes[t][slot].is_empty() {
                continue;
            }
            best = Some(match best {
                None => t,
                Some(b) => {
                    let lhs = u128::from(self.served[t]) * u128::from(self.weights[b]);
                    let rhs = u128::from(self.served[b]) * u128::from(self.weights[t]);
                    if lhs < rhs {
                        t
                    } else {
                        b
                    }
                }
            });
        }
        best
    }

    /// Form the next batch: up to `max_batch` requests of the class of
    /// the oldest queued request, filled by weighted fair scheduling.
    /// Returns `None` when the queue is empty.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn next_batch(&mut self, max_batch: usize) -> Option<Batch> {
        assert!(max_batch > 0, "max_batch must be positive");
        let (slot, class) = self.wave_class()?;
        let mut requests = Vec::new();
        while requests.len() < max_batch {
            let Some(t) = self.pick_tenant(slot) else {
                break;
            };
            let req = self.lanes[t][slot]
                .pop_front()
                .expect("tenant was eligible");
            self.depth[t] -= 1;
            self.served[t] += 1;
            requests.push(req);
        }
        debug_assert!(!requests.is_empty(), "wave_class implies a nonempty slot");
        Some(Batch { class, requests })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::QueryKind;

    fn req(id: u64, tenant: usize, kind: QueryKind) -> Request {
        Request {
            id,
            tenant,
            kind,
            arrival_s: id as f64 * 0.001,
        }
    }

    fn sssp(id: u64, tenant: usize) -> Request {
        req(id, tenant, QueryKind::Sssp { source: id as u32 })
    }

    #[test]
    fn fifo_within_one_tenant_and_class() {
        let mut q = ServeQueue::new(vec![1], 16);
        for id in 0..5 {
            q.admit(sssp(id, 0)).unwrap();
        }
        let batch = q.next_batch(3).unwrap();
        let ids: Vec<u64> = batch.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, [0, 1, 2]);
        assert_eq!(q.total_depth(), 2);
    }

    #[test]
    fn oldest_request_selects_the_wave_class() {
        let mut q = ServeQueue::new(vec![1], 16);
        q.admit(req(0, 0, QueryKind::Ppr { seed: 1 })).unwrap();
        q.admit(sssp(1, 0)).unwrap();
        q.admit(req(2, 0, QueryKind::Ppr { seed: 2 })).unwrap();
        let batch = q.next_batch(8).unwrap();
        assert_eq!(batch.class, ClassKey::Ppr);
        assert_eq!(batch.requests.len(), 2, "sssp must not join a ppr wave");
        assert_eq!(q.next_batch(8).unwrap().class, ClassKey::Sssp);
    }

    #[test]
    fn kcore_batches_split_by_k() {
        let mut q = ServeQueue::new(vec![1], 16);
        q.admit(req(0, 0, QueryKind::KCoreMember { k: 2, vertex: 0 }))
            .unwrap();
        q.admit(req(1, 0, QueryKind::KCoreMember { k: 3, vertex: 1 }))
            .unwrap();
        q.admit(req(2, 0, QueryKind::KCoreMember { k: 2, vertex: 2 }))
            .unwrap();
        let first = q.next_batch(8).unwrap();
        assert_eq!(first.class, ClassKey::KCore(2));
        assert_eq!(first.requests.len(), 2);
        let second = q.next_batch(8).unwrap();
        assert_eq!(second.class, ClassKey::KCore(3));
    }

    #[test]
    fn weighted_fill_follows_the_stride() {
        // Weights 3:1 — a full backlog batch of 8 should serve 6 + 2.
        let mut q = ServeQueue::new(vec![3, 1], 64);
        for id in 0..14 {
            q.admit(sssp(id, (id % 2) as usize)).unwrap();
        }
        let batch = q.next_batch(8).unwrap();
        let t0 = batch.requests.iter().filter(|r| r.tenant == 0).count();
        let t1 = batch.requests.iter().filter(|r| r.tenant == 1).count();
        assert_eq!((t0, t1), (6, 2), "{batch:?}");
    }

    #[test]
    fn queue_full_sheds_with_typed_error() {
        let mut q = ServeQueue::new(vec![1, 1], 2);
        q.admit(sssp(0, 0)).unwrap();
        q.admit(sssp(1, 0)).unwrap();
        let err = q.admit(sssp(2, 0)).unwrap_err();
        assert_eq!(
            err,
            ServeError::QueueFull {
                tenant: 0,
                depth: 2,
                budget: 2
            }
        );
        // The budget is per tenant: tenant 1 still has room.
        q.admit(sssp(3, 1)).unwrap();
        assert_eq!(q.shed_total(), 1);
        assert_eq!(q.total_depth(), 3);
    }

    #[test]
    fn unknown_tenant_is_rejected() {
        let mut q = ServeQueue::new(vec![1], 4);
        let err = q.admit(sssp(0, 7)).unwrap_err();
        assert!(matches!(err, ServeError::UnknownTenant { tenant: 7, .. }));
    }

    #[test]
    fn shed_does_not_corrupt_queued_requests() {
        let mut q = ServeQueue::new(vec![1], 2);
        q.admit(sssp(0, 0)).unwrap();
        q.admit(sssp(1, 0)).unwrap();
        let before_depth = q.total_depth();
        assert!(q.admit(sssp(2, 0)).is_err());
        assert_eq!(q.total_depth(), before_depth);
        let batch = q.next_batch(8).unwrap();
        let ids: Vec<u64> = batch.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, [0, 1], "shed request must not appear in a batch");
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        ServeQueue::new(vec![1, 0], 4);
    }
}
