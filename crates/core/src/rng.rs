//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the workspace (graph generators,
//! partitioner hash functions, workload shufflers) draws randomness from the
//! generators in this module so that a fixed seed yields bit-identical
//! results on every platform. This matters for the reproduction harness: the
//! paper's figures are regenerated from fixed seeds and must not drift.
//!
//! Two generators are provided:
//!
//! - [`SplitMix64`] — tiny state, used for seeding and for cheap stateless
//!   streams.
//! - [`Xoshiro256`] (xoshiro256**) — the workhorse generator with strong
//!   statistical quality and 2^256 − 1 period.
//!
//! Plus [`hash64`], an avalanche (fmix64) hash used wherever PowerGraph
//! would use a "random hash of an edge" — hashing is preferable to stateful
//! RNG there because the assignment of an edge must be a pure function of
//! the edge, independent of stream position.

/// Finalization/avalanche step of MurmurHash3 (fmix64).
///
/// Maps `u64 -> u64` bijectively with good avalanche behaviour: flipping any
/// input bit flips each output bit with probability ~1/2. Used as the "random
/// hash" primitive of the partitioners.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Combine two 64-bit values into one well-mixed hash.
///
/// Used to hash (source, target) edge pairs. The constant is the 64-bit
/// golden ratio, as in `boost::hash_combine`.
#[inline]
pub fn hash_combine(a: u64, b: u64) -> u64 {
    hash64(a ^ (b.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31)))
}

/// SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// Extremely fast, 64-bit state; its main role here is expanding a user seed
/// into the larger state of [`Xoshiro256`] and providing cheap independent
/// sub-streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. All seeds, including 0, are valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna 2018).
///
/// The default generator for everything that needs a stream of random
/// numbers (graph generation, shuffling, noise terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Create a generator by expanding `seed` through SplitMix64, as
    /// recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot emit
        // four consecutive zeros, but guard anyway for clarity.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Xoshiro256 { s }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_bounded requires a positive bound");
        // Lemire 2018: multiply the random word by the bound and keep the
        // high half; reject the short tail that would bias low values.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_bounded(span + 1)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fork an independent child generator. The child stream is decorrelated
    /// from the parent by re-seeding through SplitMix64 with a fresh draw.
    pub fn fork(&mut self) -> Xoshiro256 {
        Xoshiro256::new(self.next_u64())
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        for i in (1..n).rev() {
            let j = self.next_bounded(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Sample an index from a discrete cumulative distribution.
    ///
    /// `cdf` must be non-decreasing with `cdf.last() > 0`; values are not
    /// required to be normalized. Returns the smallest `i` such that
    /// `u * cdf.last() <= cdf[i]` for a uniform `u`.
    pub fn sample_cdf(&mut self, cdf: &[f64]) -> usize {
        assert!(!cdf.is_empty(), "sample_cdf requires a non-empty cdf");
        let total = *cdf.last().expect("non-empty");
        assert!(total > 0.0, "sample_cdf requires positive total mass");
        let u = self.next_f64() * total;
        // Binary search for the first entry >= u.
        match cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf values must not be NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values from the public-domain C implementation
        // (seed = 1234567).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn xoshiro_streams_differ_by_seed() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_bounded_respects_bound() {
        let mut rng = Xoshiro256::new(99);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn next_bounded_is_roughly_uniform() {
        let mut rng = Xoshiro256::new(5);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.next_bounded(10) as usize] += 1;
        }
        let expected = n as f64 / 10.0;
        for &c in &counts {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "bucket deviates {rel:.3} from uniform");
        }
    }

    #[test]
    fn range_u64_inclusive_endpoints_reachable() {
        let mut rng = Xoshiro256::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match rng.range_u64(5, 7) {
                5 => saw_lo = true,
                7 => saw_hi = true,
                6 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_cdf_matches_weights() {
        let mut rng = Xoshiro256::new(17);
        // pdf = [0.1, 0.0, 0.9]
        let cdf = [0.1, 0.1, 1.0];
        let mut counts = [0u32; 3];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.sample_cdf(&cdf)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-mass bucket must never be drawn");
        let p0 = counts[0] as f64 / n as f64;
        assert!((p0 - 0.1).abs() < 0.01, "p0 = {p0}");
    }

    #[test]
    fn hash64_is_bijective_on_samples() {
        // Not a proof of bijectivity, but collisions over a sample would
        // indicate a transcription bug in the constants.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(hash64(i)));
        }
    }

    #[test]
    fn hash_combine_order_sensitive() {
        assert_ne!(hash_combine(1, 2), hash_combine(2, 1));
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Xoshiro256::new(123);
        let mut child = parent.fork();
        let matches = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(matches, 0);
    }
}
