//! Deterministic self-scheduling fan-out.
//!
//! One primitive, used at both parallelism levels in this workspace
//! (engine supersteps and experiment-sweep cells): run `tasks` indexed
//! jobs on a fixed set of worker threads that pull task indices off a
//! shared atomic cursor, then return the results **in task order**.
//!
//! Self-scheduling (rather than pre-splitting the index range) matters
//! because both workloads are heavily skewed — power-law chunks and
//! whole-graph sweep cells can differ in cost by orders of magnitude —
//! and a static split would idle every thread behind the slowest
//! stripe. Task-ordered results are what make the fan-out drop-in for
//! serial code: any fold over the returned `Vec` associates exactly as
//! the serial loop did, so floating-point accumulations are
//! reproducible run-to-run and thread-count-to-thread-count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `job(0..tasks)` over `host_threads` self-scheduling workers and
/// return the results in task order.
///
/// With one effective worker (or one task) the jobs run inline on the
/// calling thread — no spawn cost, and a guaranteed-serial reference
/// path for determinism tests. A panicking job is propagated to the
/// caller with its original payload once all workers have stopped.
///
/// # Panics
/// Panics if `host_threads == 0`, or re-raises the first observed job
/// panic.
pub fn scheduled<T: Send>(
    tasks: usize,
    host_threads: usize,
    job: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    scheduled_with(tasks, host_threads, || (), |(), idx| job(idx))
}

/// [`scheduled`] with per-worker scratch state: each worker calls
/// `init` once and threads the resulting state through every job it
/// executes. This is the allocation-reuse hook — a worker that
/// processes hundreds of chunks per superstep allocates its scratch
/// buffers once, not per chunk.
///
/// # Panics
/// Panics if `host_threads == 0`, or re-raises the first observed job
/// panic.
pub fn scheduled_with<S, T: Send>(
    tasks: usize,
    host_threads: usize,
    init: impl Fn() -> S + Sync,
    job: impl Fn(&mut S, usize) -> T + Sync,
) -> Vec<T> {
    assert!(host_threads > 0, "need at least one host thread");
    if tasks == 0 {
        return Vec::new();
    }
    let workers = host_threads.min(tasks);
    if workers == 1 {
        let mut state = init();
        return (0..tasks).map(|idx| job(&mut state, idx)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    {
        // Hand each worker ownership of result slots one at a time via
        // a mutex-free split: workers collect (index, result) pairs and
        // the merge below places them. The pairs preserve task identity
        // regardless of which worker ran which task.
        let batches: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut state = init();
                        let mut out = Vec::new();
                        loop {
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            if idx >= tasks {
                                break;
                            }
                            out.push((idx, job(&mut state, idx)));
                        }
                        out
                    })
                })
                .collect();
            let mut batches = Vec::with_capacity(workers);
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                match h.join() {
                    Ok(b) => batches.push(b),
                    // Keep joining the rest so no worker outlives the
                    // scope abnormally, then re-raise.
                    Err(payload) => panic = panic.or(Some(payload)),
                }
            }
            if let Some(payload) = panic {
                std::panic::resume_unwind(payload);
            }
            batches
        });
        for (idx, value) in batches.into_iter().flatten() {
            debug_assert!(slots[idx].is_none(), "task {idx} ran twice");
            slots[idx] = Some(value);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(idx, s)| s.unwrap_or_else(|| panic!("task {idx} produced no result")))
        .collect()
}

/// The default host thread budget: `HETGRAPH_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`]
/// (falling back to 1 where the runtime cannot report it).
///
/// # Panics
/// Panics if `HETGRAPH_THREADS` is set but is not a positive integer —
/// a mis-typed budget must not silently fall back to serial.
pub fn default_host_threads() -> usize {
    match std::env::var("HETGRAPH_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => panic!("HETGRAPH_THREADS must be a positive integer, got {v:?}"),
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// A free-list of reusable buffers shared across worker threads.
///
/// Workers [`take`](Pool::take)/[`put`](Pool::put) buffers around each
/// task so allocations made in one superstep (or sweep cell) are
/// recycled by the next instead of reallocated. The pool is only an
/// allocation cache: which buffer a worker receives is arbitrary, so
/// callers must clear (or fully overwrite) anything they take.
pub struct Pool<T> {
    items: Mutex<Vec<T>>,
}

impl<T> Pool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Pool {
            items: Mutex::new(Vec::new()),
        }
    }

    /// Take a recycled item, or build a fresh one with `make`.
    pub fn take(&self, make: impl FnOnce() -> T) -> T {
        self.items
            .lock()
            .expect("pool lock poisoned")
            .pop()
            .unwrap_or_else(make)
    }

    /// Return an item to the pool for reuse.
    pub fn put(&self, item: T) {
        self.items.lock().expect("pool lock poisoned").push(item);
    }
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = scheduled(0, 4, |_| unreachable!("no tasks to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn one_thread_matches_serial_map() {
        let serial: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(scheduled(100, 1, |i| i * i), serial);
    }

    #[test]
    fn many_threads_preserve_task_order() {
        // Skew the work so late tasks finish before early ones.
        let out = scheduled(97, 8, |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 3
        });
        assert_eq!(out, (0..97).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_tasks() {
        assert_eq!(scheduled(3, 64, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Single worker: the same state must thread through all jobs.
        let counts = scheduled_with(
            10,
            1,
            || 0usize,
            |seen, _idx| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(counts, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            scheduled(16, 4, |i| {
                if i == 7 {
                    panic!("job seven failed");
                }
                i
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("job seven failed"), "got: {msg}");
    }

    #[test]
    #[should_panic(expected = "at least one host thread")]
    fn zero_threads_rejected() {
        scheduled(4, 0, |i| i);
    }

    #[test]
    fn pool_recycles_buffers() {
        let pool: Pool<Vec<u32>> = Pool::new();
        let mut a = pool.take(|| Vec::with_capacity(64));
        a.push(1);
        let cap = a.capacity();
        a.clear();
        pool.put(a);
        let b = pool.take(Vec::new);
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "buffer was recycled, not rebuilt");
    }

    #[test]
    fn default_host_threads_is_positive() {
        // Whatever the environment, the default budget must be usable
        // directly as a `scheduled` worker count.
        assert!(default_host_threads() >= 1);
    }

    #[test]
    fn scheduled_results_deterministic_across_thread_counts() {
        let reference: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(scheduled(500, threads, |i| (i as f64).sqrt()), reference);
        }
    }
}
