//! Graph transformations: induced subgraphs, vertex relabeling, sampling.
//!
//! Used by experiments that need to shrink or reshape graphs while
//! preserving (or deliberately destroying) structure — e.g. checking that
//! CCR profiling is insensitive to vertex-id ordering, or extracting the
//! largest component for diameter-sensitive runs.

use crate::rng::Xoshiro256;
use crate::{Edge, EdgeList, Graph, VertexId};

/// The subgraph induced by `keep` (vertices are relabeled densely in the
/// order they appear in `keep`). Edges with either endpoint outside `keep`
/// are dropped.
///
/// # Panics
/// Panics if `keep` contains an out-of-range or duplicate vertex.
pub fn induced_subgraph(graph: &Graph, keep: &[VertexId]) -> Graph {
    let n = graph.num_vertices();
    let mut mapping: Vec<u32> = vec![u32::MAX; n as usize];
    for (new_id, &v) in keep.iter().enumerate() {
        assert!(v < n, "vertex {v} out of range");
        assert!(
            mapping[v as usize] == u32::MAX,
            "vertex {v} listed twice in keep set"
        );
        mapping[v as usize] = new_id as u32;
    }
    let mut edges = Vec::new();
    for e in graph.edges() {
        let (s, d) = (mapping[e.src as usize], mapping[e.dst as usize]);
        if s != u32::MAX && d != u32::MAX {
            edges.push(Edge::new(s, d));
        }
    }
    Graph::from_edge_list(EdgeList::from_edges(keep.len() as u32, edges))
}

/// Relabel vertices by a permutation: vertex `v` becomes `perm[v]`.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..num_vertices`.
pub fn relabel(graph: &Graph, perm: &[VertexId]) -> Graph {
    let n = graph.num_vertices();
    assert_eq!(
        perm.len(),
        n as usize,
        "permutation must cover every vertex"
    );
    let mut seen = vec![false; n as usize];
    for &p in perm {
        assert!(p < n, "permutation target {p} out of range");
        assert!(!seen[p as usize], "permutation target {p} repeated");
        seen[p as usize] = true;
    }
    let edges = graph
        .edges()
        .iter()
        .map(|e| Edge::new(perm[e.src as usize], perm[e.dst as usize]))
        .collect();
    Graph::from_edge_list(EdgeList::from_edges(n, edges))
}

/// The degree-sorted renumbering permutation: `perm[v]` is `v`'s new id
/// when vertices are ordered by descending total degree (ties broken by
/// old id, so the result is deterministic).
///
/// Renumbering hubs to the front shrinks the delta-varint encoding of
/// [`crate::compact::CompactCsr`] — neighbors cluster among the small,
/// frequently-referenced ids, so gaps (and their varints) get smaller —
/// and improves frontier locality, since the high-degree vertices that
/// dominate superstep work become a dense id prefix. Apply with
/// [`relabel`]; invert by `inv[perm[v]] = v`.
pub fn degree_sort_permutation(graph: &Graph) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut order: Vec<VertexId> = (0..n).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    let mut perm = vec![0 as VertexId; n as usize];
    for (new_id, &old) in order.iter().enumerate() {
        perm[old as usize] = new_id as VertexId;
    }
    perm
}

/// A uniformly random permutation relabeling (destroys any id-locality the
/// generator left behind; deterministic per seed).
pub fn shuffle_labels(graph: &Graph, seed: u64) -> Graph {
    let mut perm: Vec<u32> = (0..graph.num_vertices()).collect();
    Xoshiro256::new(seed).shuffle(&mut perm);
    relabel(graph, &perm)
}

/// Uniform edge sample: keep each edge independently with probability `p`
/// (deterministic per seed). Vertex count is preserved.
///
/// # Panics
/// Panics unless `p ∈ [0, 1]`.
pub fn sample_edges(graph: &Graph, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut rng = Xoshiro256::new(seed);
    let edges = graph
        .edges()
        .iter()
        .filter(|_| rng.bernoulli(p))
        .copied()
        .collect();
    Graph::from_edge_list(EdgeList::from_edges(graph.num_vertices(), edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(1, 3),
                Edge::new(2, 3),
            ],
        ))
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = diamond();
        let sub = induced_subgraph(&g, &[0, 1, 3]);
        assert_eq!(sub.num_vertices(), 3);
        // Edges (0,1) and (1,3) survive, relabeled to (0,1) and (1,2).
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.out_neighbors(0).contains(&1));
        assert!(sub.out_neighbors(1).contains(&2));
    }

    #[test]
    fn induced_subgraph_empty_keep() {
        let sub = induced_subgraph(&diamond(), &[]);
        assert_eq!(sub.num_vertices(), 0);
        assert_eq!(sub.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_keep_rejected() {
        induced_subgraph(&diamond(), &[0, 0]);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = diamond();
        let perm = vec![3u32, 2, 1, 0]; // reverse
        let r = relabel(&g, &perm);
        assert_eq!(r.num_edges(), g.num_edges());
        // Degree multiset is invariant under relabeling.
        let mut d1: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        let mut d2: Vec<usize> = r.vertices().map(|v| r.degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
        // Specific edge: (0,1) -> (3,2).
        assert!(r.out_neighbors(3).contains(&2));
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn bad_permutation_rejected() {
        relabel(&diamond(), &[0, 0, 1, 2]);
    }

    #[test]
    fn degree_sort_puts_hubs_first_and_is_a_bijection() {
        // Star plus a chain: vertex 0 has the highest total degree.
        let g = Graph::from_edge_list(EdgeList::from_edges(
            5,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(0, 3),
                Edge::new(3, 4),
            ],
        ));
        let perm = degree_sort_permutation(&g);
        assert_eq!(perm[0], 0, "hub keeps the smallest id");
        let mut seen = perm.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..5).collect::<Vec<_>>(), "bijection");
        // Degrees are non-increasing along the new ordering.
        let r = relabel(&g, &perm);
        let degs: Vec<usize> = r.vertices().map(|v| r.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "{degs:?}");
    }

    #[test]
    fn degree_sort_ties_break_by_old_id() {
        // All vertices degree 1: permutation must be the identity.
        let g = Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![Edge::new(0, 1), Edge::new(2, 3)],
        ));
        assert_eq!(degree_sort_permutation(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shuffle_is_deterministic_and_structure_preserving() {
        let g = diamond();
        let a = shuffle_labels(&g, 9);
        let b = shuffle_labels(&g, 9);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.num_edges(), g.num_edges());
    }

    #[test]
    fn sample_edges_extremes() {
        let g = diamond();
        assert_eq!(sample_edges(&g, 1.0, 1).num_edges(), 4);
        assert_eq!(sample_edges(&g, 0.0, 1).num_edges(), 0);
        let half = sample_edges(&g, 0.5, 3);
        assert!(half.num_edges() <= 4);
        assert_eq!(half.num_vertices(), 4);
    }
}
