//! Degree distributions and power-law tail statistics.
//!
//! The paper's methodology hinges on degree distributions: synthetic proxy
//! graphs must follow a power law `P(d) ∝ d^-α` similar to natural graphs
//! (Fig 6). This module computes the histograms and summary statistics used
//! to verify that property and to report Table II.

use crate::{Graph, VertexId};

/// Summary statistics of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Minimum total degree.
    pub min: usize,
    /// Maximum total degree.
    pub max: usize,
    /// Mean total degree (in + out).
    pub mean: f64,
    /// Standard deviation of total degree.
    pub stddev: f64,
    /// Number of isolated vertices (total degree zero).
    pub isolated: usize,
}

impl DegreeStats {
    /// Compute statistics over the total degree of every vertex.
    pub fn from_graph(g: &Graph) -> Self {
        Self::from_degrees((0..g.num_vertices()).map(|v| g.degree(v)), g.num_edges())
    }

    /// Compute from an iterator of degrees.
    pub fn from_degrees(degrees: impl Iterator<Item = usize>, num_edges: usize) -> Self {
        let mut n = 0u32;
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut isolated = 0usize;
        for d in degrees {
            n += 1;
            min = min.min(d);
            max = max.max(d);
            sum += d as f64;
            sum_sq += (d as f64) * (d as f64);
            if d == 0 {
                isolated += 1;
            }
        }
        if n == 0 {
            return DegreeStats {
                num_vertices: 0,
                num_edges,
                min: 0,
                max: 0,
                mean: 0.0,
                stddev: 0.0,
                isolated: 0,
            };
        }
        let mean = sum / n as f64;
        let var = (sum_sq / n as f64 - mean * mean).max(0.0);
        DegreeStats {
            num_vertices: n,
            num_edges,
            min,
            max,
            mean,
            stddev: var.sqrt(),
            isolated,
        }
    }

    /// Coefficient of variation (stddev / mean); a crude skew indicator.
    /// Power-law graphs have CV well above 1; uniform random graphs sit near
    /// `1/sqrt(mean)`.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Histogram of degrees: `counts[d]` = number of vertices with degree `d`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DegreeHistogram {
    counts: Vec<usize>,
}

impl DegreeHistogram {
    /// Histogram of out-degrees.
    pub fn out_degrees(g: &Graph) -> Self {
        Self::from_degrees((0..g.num_vertices()).map(|v| g.out_degree(v)))
    }

    /// Histogram of in-degrees.
    pub fn in_degrees(g: &Graph) -> Self {
        Self::from_degrees((0..g.num_vertices()).map(|v| g.in_degree(v)))
    }

    /// Histogram of total degrees.
    pub fn total_degrees(g: &Graph) -> Self {
        Self::from_degrees((0..g.num_vertices()).map(|v| g.degree(v)))
    }

    /// Build from raw degrees.
    pub fn from_degrees(degrees: impl Iterator<Item = usize>) -> Self {
        let mut counts = Vec::new();
        for d in degrees {
            if d >= counts.len() {
                counts.resize(d + 1, 0);
            }
            counts[d] += 1;
        }
        DegreeHistogram { counts }
    }

    /// `counts[d]` = number of vertices of degree `d`.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Number of vertices of degree `d` (0 beyond the max degree).
    pub fn count(&self, d: usize) -> usize {
        self.counts.get(d).copied().unwrap_or(0)
    }

    /// Maximum degree with a nonzero count (0 for an empty histogram).
    pub fn max_degree(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Total number of vertices recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// `(degree, count)` pairs with nonzero count — the scatter the paper
    /// plots in Fig 6 (log-log degree vs #vertices).
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(d, &c)| (d, c))
    }

    /// Complementary CDF: fraction of vertices with degree `>= d`, for each
    /// nonzero degree. CCDFs are the standard robust way to eyeball a
    /// power-law tail (slope ≈ −(α − 1) on log-log axes).
    pub fn ccdf(&self) -> Vec<(usize, f64)> {
        let total = self.total();
        if total == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut at_least = total;
        for (d, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                out.push((d, at_least as f64 / total as f64));
            }
            at_least -= c;
        }
        out
    }

    /// Least-squares estimate of the power-law exponent α from the slope of
    /// the log-log CCDF: `P(D >= d) ∝ d^-(α-1)`, so `α = 1 − slope`.
    ///
    /// Much more robust than fitting raw histogram counts, whose
    /// one-vertex tail bins flatten the apparent slope. Points with CCDF
    /// below `max(50 / total, 1e-3)` are dropped: the deep tail is both
    /// sampling noise and support-truncation curvature, which would bias
    /// the slope steep.
    pub fn fit_alpha_ccdf(&self, d_min: usize) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let floor = (50.0 / total as f64).max(1e-3);
        let pts: Vec<(f64, f64)> = self
            .ccdf()
            .into_iter()
            .filter(|&(d, p)| d >= d_min.max(1) && p >= floor)
            .map(|(d, p)| ((d as f64).ln(), p.ln()))
            .collect();
        let slope = least_squares_slope(&pts)?;
        Some(1.0 - slope)
    }

    /// Least-squares estimate of the power-law exponent α from the log-log
    /// degree histogram over `d >= d_min`, i.e. the slope of
    /// `log(count) = -α log(d) + c`.
    ///
    /// This is the quick empirical check used in tests; the paper's
    /// moment-matching Newton solver lives in `hetgraph-gen::alpha`.
    /// Prefer [`DegreeHistogram::fit_alpha_ccdf`] on sampled data — the raw
    /// histogram fit is biased flat by one-vertex tail bins.
    pub fn fit_alpha_loglog(&self, d_min: usize) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .nonzero()
            .filter(|&(d, _)| d >= d_min.max(1))
            .map(|(d, c)| ((d as f64).ln(), (c as f64).ln()))
            .collect();
        let slope = least_squares_slope(&pts)?;
        Some(-slope)
    }
}

/// Slope of the least-squares line through `(x, y)` points; `None` if fewer
/// than 3 points or degenerate x spread.
fn least_squares_slope(pts: &[(f64, f64)]) -> Option<f64> {
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// The `k` highest-degree vertices (by total degree), descending.
///
/// Mixed-cut partitioners special-case high-degree vertices; this helper is
/// used by tests and diagnostics to find them.
pub fn top_degree_vertices(g: &Graph, k: usize) -> Vec<(VertexId, usize)> {
    let mut all: Vec<(VertexId, usize)> = (0..g.num_vertices()).map(|v| (v, g.degree(v))).collect();
    all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Edge, EdgeList};

    fn star(n: u32) -> Graph {
        // vertex 0 points to everyone else
        let edges = (1..n).map(|v| Edge::new(0, v)).collect();
        Graph::from_edge_list(EdgeList::from_edges(n, edges))
    }

    #[test]
    fn stats_on_star() {
        let g = star(11);
        let s = g.degree_stats();
        assert_eq!(s.max, 10);
        assert_eq!(s.min, 1);
        assert_eq!(s.isolated, 0);
        assert!((s.mean - 2.0 * 10.0 / 11.0).abs() < 1e-12);
        assert!(s.coefficient_of_variation() > 1.0);
    }

    #[test]
    fn histogram_counts() {
        let g = star(5);
        let h = DegreeHistogram::total_degrees(&g);
        assert_eq!(h.count(1), 4); // leaves
        assert_eq!(h.count(4), 1); // hub
        assert_eq!(h.max_degree(), 4);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn ccdf_monotone_and_starts_at_one() {
        let g = star(6);
        let h = DegreeHistogram::total_degrees(&g);
        let ccdf = h.ccdf();
        assert_eq!(ccdf.first().map(|p| p.1), Some(1.0));
        for w in ccdf.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn loglog_fit_recovers_synthetic_slope() {
        // Construct an exact power-law histogram count(d) = round(C * d^-2.5).
        let alpha = 2.5f64;
        let mut counts = vec![0usize];
        for d in 1..=200usize {
            counts.push(((1e6) * (d as f64).powf(-alpha)).round() as usize);
        }
        let h = DegreeHistogram { counts };
        let fit = h.fit_alpha_loglog(1).unwrap();
        assert!((fit - alpha).abs() < 0.05, "fit = {fit}");
    }

    #[test]
    fn ccdf_fit_recovers_synthetic_slope() {
        // Exact power-law histogram: count(d) = round(C * d^-2.2).
        let alpha = 2.2f64;
        let mut counts = vec![0usize];
        for d in 1..=500usize {
            counts.push(((1e6) * (d as f64).powf(-alpha)).round() as usize);
        }
        let h = DegreeHistogram { counts };
        let fit = h.fit_alpha_ccdf(2).unwrap();
        assert!((fit - alpha).abs() < 0.2, "fit = {fit}");
    }

    #[test]
    fn top_degree_vertices_sorted() {
        let g = star(8);
        let top = top_degree_vertices(&g, 3);
        assert_eq!(top[0].0, 0);
        assert_eq!(top[0].1, 7);
        assert_eq!(top.len(), 3);
        assert!(top[1].1 <= top[0].1);
    }

    #[test]
    fn empty_histogram() {
        let h = DegreeHistogram::from_degrees(std::iter::empty());
        assert_eq!(h.max_degree(), 0);
        assert_eq!(h.total(), 0);
        assert!(h.ccdf().is_empty());
        assert!(h.fit_alpha_loglog(1).is_none());
    }
}
