//! Structure-agnostic graph metadata for vertex programs.
//!
//! GAS programs need only counts and degrees from the graph — never raw
//! adjacency (the engine walks adjacency on the programs' behalf). A
//! [`GraphMeta`] packages exactly that surface over *either* backing
//! representation: the plain [`crate::Csr`]'s `usize` offsets or the
//! narrow/wide offset indexes of [`crate::compact::CompactCsr`]. This is
//! what lets one superstep kernel serve both representations without a
//! generic parameter leaking into every program.

use crate::VertexId;

/// One direction's cumulative degree offsets, borrowed from whichever
/// representation backs the graph.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DegreeIndex<'a> {
    /// Plain CSR offsets (`Vec<usize>`).
    Wide(&'a [usize]),
    /// Compact CSR narrow edge offsets.
    Narrow(&'a [u32]),
    /// Compact CSR wide edge offsets.
    Narrow64(&'a [u64]),
}

impl DegreeIndex<'_> {
    #[inline]
    fn degree(&self, v: usize) -> usize {
        match self {
            DegreeIndex::Wide(o) => o[v + 1] - o[v],
            DegreeIndex::Narrow(o) => (o[v + 1] - o[v]) as usize,
            DegreeIndex::Narrow64(o) => (o[v + 1] - o[v]) as usize,
        }
    }
}

/// Borrowed counts-and-degrees view of a graph — the whole graph surface a
/// GAS vertex program sees. Cheap to copy; construct once per run via
/// `Graph::meta()` or the compact distributed graph's equivalent.
#[derive(Debug, Clone, Copy)]
pub struct GraphMeta<'a> {
    num_vertices: u32,
    num_edges: usize,
    out: DegreeIndex<'a>,
    inn: DegreeIndex<'a>,
}

impl<'a> GraphMeta<'a> {
    /// Assemble from per-direction degree indexes. Crate-internal: lets
    /// [`crate::compact`] build a meta whose two directions use different
    /// index widths (each [`crate::compact::CompactCsr`] narrows
    /// independently).
    pub(crate) fn from_parts(
        num_vertices: u32,
        num_edges: usize,
        out: DegreeIndex<'a>,
        inn: DegreeIndex<'a>,
    ) -> Self {
        GraphMeta {
            num_vertices,
            num_edges,
            out,
            inn,
        }
    }

    /// Build from plain CSR offset arrays (each of length
    /// `num_vertices + 1`).
    pub fn from_offsets(
        num_vertices: u32,
        num_edges: usize,
        out_offsets: &'a [usize],
        in_offsets: &'a [usize],
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), num_vertices as usize + 1);
        debug_assert_eq!(in_offsets.len(), num_vertices as usize + 1);
        GraphMeta {
            num_vertices,
            num_edges,
            out: DegreeIndex::Wide(out_offsets),
            inn: DegreeIndex::Wide(in_offsets),
        }
    }

    /// Build from compact narrow (`u32`) edge-offset arrays.
    pub fn from_narrow_offsets(
        num_vertices: u32,
        num_edges: usize,
        out_offsets: &'a [u32],
        in_offsets: &'a [u32],
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), num_vertices as usize + 1);
        debug_assert_eq!(in_offsets.len(), num_vertices as usize + 1);
        GraphMeta {
            num_vertices,
            num_edges,
            out: DegreeIndex::Narrow(out_offsets),
            inn: DegreeIndex::Narrow(in_offsets),
        }
    }

    /// Build from compact wide (`u64`) edge-offset arrays.
    pub fn from_wide_offsets(
        num_vertices: u32,
        num_edges: usize,
        out_offsets: &'a [u64],
        in_offsets: &'a [u64],
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), num_vertices as usize + 1);
        debug_assert_eq!(in_offsets.len(), num_vertices as usize + 1);
        GraphMeta {
            num_vertices,
            num_edges,
            out: DegreeIndex::Narrow64(out_offsets),
            inn: DegreeIndex::Narrow64(in_offsets),
        }
    }

    /// Number of vertices, including isolated ones.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v as usize)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.inn.degree(v as usize)
    }

    /// Total degree (in + out) of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Average out-degree `|E| / |V|` (0 for an empty vertex set), exactly
    /// as `Graph::avg_degree` computes it — cost-model inputs derived from
    /// either representation must match bit-for-bit.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.num_edges as f64 / self.num_vertices as f64
        }
    }

    /// Maximum total degree over all vertices (0 for an empty graph).
    pub fn max_total_degree(&self) -> usize {
        (0..self.num_vertices)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::CompactCsr;
    use crate::{Edge, EdgeList, Graph};

    fn diamond() -> Graph {
        Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(1, 3),
                Edge::new(2, 3),
            ],
        ))
    }

    #[test]
    fn plain_meta_matches_graph_accessors() {
        let g = diamond();
        let m = g.meta();
        assert_eq!(m.num_vertices(), g.num_vertices());
        assert_eq!(m.num_edges(), g.num_edges());
        assert_eq!(m.avg_degree(), g.avg_degree());
        for v in g.vertices() {
            assert_eq!(m.out_degree(v), g.out_degree(v));
            assert_eq!(m.in_degree(v), g.in_degree(v));
            assert_eq!(m.degree(v), g.degree(v));
        }
        assert_eq!(m.max_total_degree(), 2);
    }

    #[test]
    fn narrow_meta_matches_plain_meta() {
        let g = diamond();
        let out = CompactCsr::from_csr(g.out_csr());
        let inn = CompactCsr::from_csr(g.in_csr());
        // Degrees via the compact structures must agree with the plain ones.
        for v in g.vertices() {
            assert_eq!(out.degree(v), g.out_degree(v));
            assert_eq!(inn.degree(v), g.in_degree(v));
        }
    }

    #[test]
    fn wide_offsets_work() {
        let out = [0u64, 2, 3];
        let inn = [0u64, 1, 3];
        let m = GraphMeta::from_wide_offsets(2, 3, &out, &inn);
        assert_eq!(m.out_degree(0), 2);
        assert_eq!(m.in_degree(1), 2);
        assert_eq!(m.degree(1), 3);
    }

    #[test]
    fn empty_graph_avg_degree_is_zero() {
        let out = [0usize];
        let m = GraphMeta::from_offsets(0, 0, &out, &out);
        assert_eq!(m.avg_degree(), 0.0);
        assert_eq!(m.max_total_degree(), 0);
    }
}
