//! Small numeric helpers shared by the profiling and evaluation crates.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean. Returns 0 for an empty slice.
///
/// Speedup ratios are summarized with geometric means (the standard for
/// normalized performance numbers) throughout the evaluation harness.
///
/// # Panics
/// Panics if any value is non-positive: geometric means of ratios are only
/// meaningful over positive values, and a zero would silently poison the
/// summary.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Population standard deviation. Returns 0 for slices of length < 2.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Relative error `|estimate - truth| / |truth|`.
///
/// # Panics
/// Panics if `truth == 0`.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    assert!(truth != 0.0, "relative error undefined for zero truth");
    (estimate - truth).abs() / truth.abs()
}

/// Mean absolute percentage error over paired (estimate, truth) samples,
/// in percent. This is the paper's accuracy metric for CCR estimation
/// ("92% accuracy" = 8% MAPE).
pub fn mape(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    100.0
        * mean(
            &pairs
                .iter()
                .map(|&(e, t)| relative_error(e, t))
                .collect::<Vec<_>>(),
        )
}

/// Percentile via linear interpolation on sorted data; `p` in `[0, 100]`.
///
/// # Panics
/// Panics on empty input or out-of-range `p`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Normalize a weight vector to sum to 1.
///
/// # Panics
/// Panics if the sum is not positive or any weight is negative.
pub fn normalize(weights: &[f64]) -> Vec<f64> {
    let sum: f64 = weights.iter().sum();
    assert!(sum > 0.0, "cannot normalize weights summing to {sum}");
    weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0, "negative weight {w}");
            w / sum
        })
        .collect()
}

/// Maximum over an `f64` iterator (NaN-free input assumed). `None` if empty.
pub fn fmax(xs: impl IntoIterator<Item = f64>) -> Option<f64> {
    xs.into_iter().fold(None, |acc, x| match acc {
        None => Some(x),
        Some(a) => Some(a.max(x)),
    })
}

/// Minimum over an `f64` iterator (NaN-free input assumed). `None` if empty.
pub fn fmin(xs: impl IntoIterator<Item = f64>) -> Option<f64> {
    xs.into_iter().fold(None, |acc, x| match acc {
        None => Some(x),
        Some(a) => Some(a.min(x)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_ratios() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn relative_error_basic() {
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(0.9, 1.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mape_matches_hand_computation() {
        let pairs = [(1.1, 1.0), (1.8, 2.0)];
        // errors: 10% and 10% -> MAPE 10%
        assert!((mape(&pairs) - 10.0).abs() < 1e-9);
        assert_eq!(mape(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_sums_to_one() {
        let w = normalize(&[1.0, 3.0]);
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "normalize")]
    fn normalize_rejects_zero_sum() {
        normalize(&[0.0, 0.0]);
    }

    #[test]
    fn fmax_fmin() {
        assert_eq!(fmax([1.0, 3.0, 2.0]), Some(3.0));
        assert_eq!(fmin([1.0, 3.0, 2.0]), Some(1.0));
        assert_eq!(fmax(std::iter::empty::<f64>()), None);
    }
}
