//! Fixed-size binary edge shards: the streaming ingestion format.
//!
//! A shard directory holds a graph as a sequence of files
//! (`shard-00000.hgs`, `shard-00001.hgs`, …), each a small header plus at
//! most a fixed number of little-endian `(src, dst)` `u32` pairs. The
//! generators write shards one at a time with bounded buffering — peak
//! memory during generation is one shard's worth of edges, not the whole
//! edge set — and the streaming partitioners replay them as an
//! `Iterator<Item = Edge>` the same way. Concatenating every shard's edges
//! in file order reproduces the generator's exact edge order, so a shard
//! stream is interchangeable with the in-memory edge list for every
//! order-sensitive consumer (the partitioners hash edges positionally
//! through their salt state).
//!
//! Header layout (little-endian): 8-byte magic `HETSHRD1`, `u32` vertex
//! count, `u32` shard index, `u64` edge count. Every read validates the
//! magic, the index sequence, the vertex-count agreement across shards,
//! and that the file holds exactly the declared edges — truncation and
//! corruption surface as typed [`CoreError`]s, never panics.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::{CoreError, Edge};

/// Magic bytes opening every shard file.
pub const SHARD_MAGIC: &[u8; 8] = b"HETSHRD1";

/// Default maximum edges per shard file (8 MiB of edge pairs): large
/// enough that header overhead vanishes, small enough that the writer's
/// buffer stays far below any graph's full edge set.
pub const DEFAULT_SHARD_EDGES: usize = 1 << 20;

/// File name of shard `index` within a shard directory.
fn shard_file_name(index: u32) -> String {
    format!("shard-{index:05}.hgs")
}

/// Serialize one shard: header plus `edges` as LE `u32` pairs.
pub fn write_shard<W: Write>(
    writer: W,
    num_vertices: u32,
    index: u32,
    edges: &[Edge],
) -> Result<(), CoreError> {
    let mut w = BufWriter::new(writer);
    w.write_all(SHARD_MAGIC)?;
    w.write_all(&num_vertices.to_le_bytes())?;
    w.write_all(&index.to_le_bytes())?;
    w.write_all(&(edges.len() as u64).to_le_bytes())?;
    for e in edges {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Parsed shard header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHeader {
    /// Vertex-count bound shared by every shard of a graph.
    pub num_vertices: u32,
    /// Position of this shard in the stream.
    pub index: u32,
    /// Number of edges in this shard.
    pub num_edges: u64,
}

/// Read and validate a shard header.
pub fn read_shard_header<R: Read>(r: &mut R) -> Result<ShardHeader, CoreError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| CoreError::BadBinaryFormat("truncated shard magic".into()))?;
    if &magic != SHARD_MAGIC {
        return Err(CoreError::BadBinaryFormat("wrong shard magic bytes".into()));
    }
    let mut buf4 = [0u8; 4];
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf4)
        .map_err(|_| CoreError::BadBinaryFormat("truncated shard vertex count".into()))?;
    let num_vertices = u32::from_le_bytes(buf4);
    r.read_exact(&mut buf4)
        .map_err(|_| CoreError::BadBinaryFormat("truncated shard index".into()))?;
    let index = u32::from_le_bytes(buf4);
    r.read_exact(&mut buf8)
        .map_err(|_| CoreError::BadBinaryFormat("truncated shard edge count".into()))?;
    let num_edges = u64::from_le_bytes(buf8);
    Ok(ShardHeader {
        num_vertices,
        index,
        num_edges,
    })
}

/// Read one whole shard: header plus its edge vector, with range checks.
pub fn read_shard<R: Read>(reader: R) -> Result<(ShardHeader, Vec<Edge>), CoreError> {
    let mut r = BufReader::new(reader);
    let header = read_shard_header(&mut r)?;
    let mut edges = Vec::with_capacity(header.num_edges as usize);
    let mut pair = [0u8; 8];
    for i in 0..header.num_edges {
        r.read_exact(&mut pair)
            .map_err(|_| CoreError::BadBinaryFormat(format!("shard truncated at edge {i}")))?;
        let src = u32::from_le_bytes(pair[0..4].try_into().expect("4 bytes"));
        let dst = u32::from_le_bytes(pair[4..8].try_into().expect("4 bytes"));
        if src >= header.num_vertices || dst >= header.num_vertices {
            return Err(CoreError::VertexOutOfRange {
                vertex: src.max(dst) as u64,
                num_vertices: header.num_vertices as u64,
            });
        }
        edges.push(Edge::new(src, dst));
    }
    Ok((header, edges))
}

/// Streaming shard-directory writer with bounded buffering: edges are
/// buffered up to the per-shard capacity, then flushed as the next shard
/// file. Peak memory is one shard, independent of total edge count.
#[derive(Debug)]
pub struct ShardWriter {
    dir: PathBuf,
    num_vertices: u32,
    capacity: usize,
    buffer: Vec<Edge>,
    next_index: u32,
    total_edges: u64,
}

impl ShardWriter {
    /// Open a writer over `dir` (created if absent) with the default
    /// per-shard capacity.
    pub fn create(dir: &Path, num_vertices: u32) -> Result<Self, CoreError> {
        Self::with_capacity(dir, num_vertices, DEFAULT_SHARD_EDGES)
    }

    /// Open a writer with an explicit per-shard edge capacity (must be
    /// nonzero). Small capacities are useful in tests to force multiple
    /// shards from tiny graphs.
    pub fn with_capacity(
        dir: &Path,
        num_vertices: u32,
        capacity: usize,
    ) -> Result<Self, CoreError> {
        assert!(capacity > 0, "shard capacity must be nonzero");
        std::fs::create_dir_all(dir)?;
        Ok(ShardWriter {
            dir: dir.to_path_buf(),
            num_vertices,
            capacity,
            buffer: Vec::with_capacity(capacity),
            next_index: 0,
            total_edges: 0,
        })
    }

    /// Append one edge, flushing a full shard to disk when the buffer
    /// reaches capacity.
    pub fn push(&mut self, e: Edge) -> Result<(), CoreError> {
        debug_assert!(e.src < self.num_vertices && e.dst < self.num_vertices);
        self.buffer.push(e);
        self.total_edges += 1;
        if self.buffer.len() >= self.capacity {
            self.flush_shard()?;
        }
        Ok(())
    }

    fn flush_shard(&mut self) -> Result<(), CoreError> {
        let path = self.dir.join(shard_file_name(self.next_index));
        write_shard(
            File::create(path)?,
            self.num_vertices,
            self.next_index,
            &self.buffer,
        )?;
        self.next_index += 1;
        self.buffer.clear();
        Ok(())
    }

    /// Flush any buffered edges and return the total edge count written.
    /// An empty graph still produces one empty shard so that the directory
    /// is self-describing (vertex count lives in the header).
    pub fn finish(mut self) -> Result<u64, CoreError> {
        if !self.buffer.is_empty() || self.next_index == 0 {
            self.flush_shard()?;
        }
        Ok(self.total_edges)
    }
}

/// A validated shard directory, replayable any number of times.
///
/// Opening scans every `shard-*.hgs` file in index order, checks headers
/// (magic, contiguous indexes, consistent vertex count) and that each
/// file's size matches its declared edge count, so iteration after a
/// successful open cannot run into malformed data.
#[derive(Debug, Clone)]
pub struct ShardSet {
    dir: PathBuf,
    num_vertices: u32,
    shards: Vec<ShardHeader>,
    total_edges: u64,
}

impl ShardSet {
    /// Open and validate the shard directory `dir`.
    pub fn open(dir: &Path) -> Result<Self, CoreError> {
        let mut shards = Vec::new();
        let mut num_vertices = None;
        let mut total_edges = 0u64;
        loop {
            let index = shards.len() as u32;
            let path = dir.join(shard_file_name(index));
            if !path.exists() {
                break;
            }
            let file = File::open(&path)?;
            let file_len = file.metadata()?.len();
            let mut r = BufReader::new(file);
            let header = read_shard_header(&mut r)?;
            if header.index != index {
                return Err(CoreError::BadBinaryFormat(format!(
                    "shard {index} declares index {}",
                    header.index
                )));
            }
            match num_vertices {
                None => num_vertices = Some(header.num_vertices),
                Some(n) if n != header.num_vertices => {
                    return Err(CoreError::BadBinaryFormat(format!(
                        "shard {index} declares {} vertices, expected {n}",
                        header.num_vertices
                    )));
                }
                Some(_) => {}
            }
            let expected = 24 + 8 * header.num_edges;
            if file_len != expected {
                return Err(CoreError::BadBinaryFormat(format!(
                    "shard {index} is {file_len} bytes, expected {expected} for {} edges",
                    header.num_edges
                )));
            }
            total_edges += header.num_edges;
            shards.push(header);
        }
        if shards.is_empty() {
            return Err(CoreError::BadBinaryFormat(format!(
                "no shard-00000.hgs in {}",
                dir.display()
            )));
        }
        Ok(ShardSet {
            dir: dir.to_path_buf(),
            num_vertices: num_vertices.expect("at least one shard"),
            shards,
            total_edges,
        })
    }

    /// Vertex-count bound shared by every shard.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Total edges across all shards.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.total_edges
    }

    /// Number of shard files.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Replay every edge in stream order. One shard is resident at a time.
    ///
    /// I/O errors after the validated open (disk removed mid-read, file
    /// rewritten underneath us) panic with a descriptive message rather
    /// than silently truncating the stream — a partitioner fed a partial
    /// stream would produce a wrong-but-plausible assignment.
    pub fn stream(&self) -> ShardStream<'_> {
        ShardStream {
            set: self,
            shard: 0,
            edges: Vec::new(),
            pos: 0,
        }
    }

    /// Run `f` over every edge in stream order (convenience wrapper over
    /// [`ShardSet::stream`]).
    pub fn for_each_edge<F: FnMut(Edge)>(&self, mut f: F) {
        for e in self.stream() {
            f(e);
        }
    }
}

/// Iterator over a [`ShardSet`]'s edges in stream order, loading one shard
/// at a time.
#[derive(Debug)]
pub struct ShardStream<'a> {
    set: &'a ShardSet,
    shard: usize,
    edges: Vec<Edge>,
    pos: usize,
}

impl Iterator for ShardStream<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        loop {
            if self.pos < self.edges.len() {
                let e = self.edges[self.pos];
                self.pos += 1;
                return Some(e);
            }
            if self.shard >= self.set.shards.len() {
                return None;
            }
            let path = self.set.dir.join(shard_file_name(self.shard as u32));
            let (_, edges) = read_shard(File::open(&path).unwrap_or_else(|e| {
                panic!("shard {} vanished after validation: {e}", path.display())
            }))
            .unwrap_or_else(|e| panic!("shard {} changed after validation: {e}", path.display()));
            self.edges = edges;
            self.pos = 0;
            self.shard += 1;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining_here = self.edges.len() - self.pos;
        let later: u64 = self.set.shards[self.shard.min(self.set.shards.len())..]
            .iter()
            .map(|h| h.num_edges)
            .sum();
        let total = remaining_here + later as usize;
        (total, Some(total))
    }
}

impl ExactSizeIterator for ShardStream<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hetgraph_shard_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample_edges(count: u32) -> Vec<Edge> {
        (0..count)
            .map(|i| Edge::new(i % 10, (i * 7 + 1) % 10))
            .collect()
    }

    #[test]
    fn writer_splits_into_fixed_shards_and_stream_replays_in_order() {
        let dir = temp_dir("split");
        let edges = sample_edges(25);
        let mut w = ShardWriter::with_capacity(&dir, 10, 8).unwrap();
        for &e in &edges {
            w.push(e).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 25);
        let set = ShardSet::open(&dir).unwrap();
        assert_eq!(set.num_vertices(), 10);
        assert_eq!(set.num_edges(), 25);
        assert_eq!(set.num_shards(), 4); // 8 + 8 + 8 + 1
        assert_eq!(set.stream().len(), 25);
        let replayed: Vec<Edge> = set.stream().collect();
        assert_eq!(replayed, edges);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_graph_roundtrips_as_one_empty_shard() {
        let dir = temp_dir("empty");
        let w = ShardWriter::with_capacity(&dir, 7, 4).unwrap();
        assert_eq!(w.finish().unwrap(), 0);
        let set = ShardSet::open(&dir).unwrap();
        assert_eq!(set.num_vertices(), 7);
        assert_eq!(set.num_edges(), 0);
        assert_eq!(set.num_shards(), 1);
        assert_eq!(set.stream().count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_edge_shard_roundtrips() {
        let dir = temp_dir("single");
        let mut w = ShardWriter::create(&dir, 3).unwrap();
        w.push(Edge::new(2, 0)).unwrap();
        w.finish().unwrap();
        let set = ShardSet::open(&dir).unwrap();
        assert_eq!(set.stream().collect::<Vec<_>>(), vec![Edge::new(2, 0)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_header_is_a_typed_error() {
        let dir = temp_dir("trunc_header");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(shard_file_name(0)), b"HETSH").unwrap();
        assert!(matches!(
            ShardSet::open(&dir),
            Err(CoreError::BadBinaryFormat(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_magic_is_a_typed_error() {
        let dir = temp_dir("magic");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        write_shard(&mut bytes, 4, 0, &[Edge::new(0, 1)]).unwrap();
        bytes[0..8].copy_from_slice(b"NOTSHARD");
        std::fs::write(dir.join(shard_file_name(0)), &bytes).unwrap();
        assert!(matches!(
            ShardSet::open(&dir),
            Err(CoreError::BadBinaryFormat(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_body_is_a_typed_error() {
        let dir = temp_dir("trunc_body");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        write_shard(&mut bytes, 4, 0, &sample_edges(5)).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(dir.join(shard_file_name(0)), &bytes).unwrap();
        assert!(matches!(
            ShardSet::open(&dir),
            Err(CoreError::BadBinaryFormat(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_vertex_counts_are_rejected() {
        let dir = temp_dir("mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let mut a = Vec::new();
        write_shard(&mut a, 4, 0, &[Edge::new(0, 1)]).unwrap();
        std::fs::write(dir.join(shard_file_name(0)), &a).unwrap();
        let mut b = Vec::new();
        write_shard(&mut b, 9, 1, &[Edge::new(0, 1)]).unwrap();
        std::fs::write(dir.join(shard_file_name(1)), &b).unwrap();
        assert!(matches!(
            ShardSet::open(&dir),
            Err(CoreError::BadBinaryFormat(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_vertex_is_a_typed_error() {
        let mut bytes = Vec::new();
        write_shard(&mut bytes, 100, 0, &[Edge::new(50, 99)]).unwrap();
        // Rewrite the vertex bound below the edge endpoints.
        bytes[8..12].copy_from_slice(&10u32.to_le_bytes());
        assert!(matches!(
            read_shard(bytes.as_slice()),
            Err(CoreError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn missing_directory_is_a_typed_error() {
        let dir = temp_dir("missing");
        assert!(matches!(
            ShardSet::open(&dir),
            Err(CoreError::BadBinaryFormat(_))
        ));
    }

    #[test]
    fn reread_is_deterministic_across_threads() {
        let dir = temp_dir("threads");
        let edges = sample_edges(100);
        let mut w = ShardWriter::with_capacity(&dir, 10, 16).unwrap();
        for &e in &edges {
            w.push(e).unwrap();
        }
        w.finish().unwrap();
        for threads in [1usize, 2, 4] {
            let reads: Vec<Vec<Edge>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let dir = dir.clone();
                        s.spawn(move || ShardSet::open(&dir).unwrap().stream().collect())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for r in &reads {
                assert_eq!(r, &edges, "replay diverged at {threads} threads");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
