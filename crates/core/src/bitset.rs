//! Fixed-capacity bitset for active-vertex tracking.
//!
//! The engine tracks which vertices are active in each superstep; a packed
//! bitset keeps that tracking at one bit per vertex with O(words) clearing
//! and fast population counts.

/// A fixed-capacity set of `u32` indices stored one bit each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Create an empty set with room for indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Create a set with all of `0..capacity` present.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        // Clear the bits above `capacity` in the final partial word.
        let tail = capacity % 64;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        s
    }

    /// Capacity (exclusive upper bound on indices).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert `i`. Returns whether it was newly inserted.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "index {i} out of capacity {}",
            self.capacity
        );
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Remove `i`. Returns whether it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "index {i} out of capacity {}",
            self.capacity
        );
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Whether `i` is present.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Union another set into this one.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterate over present indices in ascending order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Ascending iterator over the indices present in a [`BitSet`].
pub struct BitSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0), "double insert reports not-fresh");
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        let s64 = BitSet::full(64);
        assert_eq!(s64.len(), 64);
    }

    #[test]
    fn iteration_ascending() {
        let mut s = BitSet::new(200);
        for i in [3usize, 64, 65, 199] {
            s.insert(i);
        }
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![3, 64, 65, 199]);
    }

    #[test]
    fn clear_and_empty() {
        let mut s = BitSet::full(10);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn union() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(99);
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(99));
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(8).insert(8);
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }
}
