//! Directed edges and edge lists.
//!
//! PowerGraph-style partitioning assigns *edges* to machines, so the edge
//! list — not the adjacency structure — is the canonical streaming
//! representation consumed by every partitioner in `hetgraph-partition`.

use crate::VertexId;

/// A directed edge `src -> dst`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Target vertex.
    pub dst: VertexId,
}

impl Edge {
    /// Construct an edge.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst }
    }

    /// Whether the edge is a self loop.
    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.src == self.dst
    }

    /// The edge with endpoints swapped.
    #[inline]
    pub fn reversed(&self) -> Edge {
        Edge {
            src: self.dst,
            dst: self.src,
        }
    }

    /// A stable 64-bit key for hashing the edge as a pair.
    #[inline]
    pub fn key(&self) -> u64 {
        ((self.src as u64) << 32) | self.dst as u64
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

/// A growable list of directed edges together with the vertex-count bound.
///
/// The vertex count is carried explicitly because graphs may legitimately
/// contain isolated vertices (e.g. the synthetic catalogs pin |V| to the
/// paper's Table II regardless of which vertices happen to receive edges).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EdgeList {
    num_vertices: u32,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Create an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Create an empty edge list with preallocated capacity.
    pub fn with_capacity(num_vertices: u32, capacity: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::with_capacity(capacity),
        }
    }

    /// Build from parts. Panics if any edge is out of range (programmer
    /// error; use [`crate::GraphBuilder`] for fallible construction).
    pub fn from_edges(num_vertices: u32, edges: Vec<Edge>) -> Self {
        for e in &edges {
            assert!(
                e.src < num_vertices && e.dst < num_vertices,
                "edge {e} out of range for {num_vertices} vertices"
            );
        }
        EdgeList {
            num_vertices,
            edges,
        }
    }

    /// Number of vertices (including isolated ones).
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the list contains no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Average out-degree `|E| / |V|` (0 for an empty vertex set).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.edges.len() as f64 / self.num_vertices as f64
        }
    }

    /// Append an edge.
    ///
    /// # Panics
    /// Panics in debug builds if an endpoint is out of range.
    #[inline]
    pub fn push(&mut self, e: Edge) {
        debug_assert!(e.src < self.num_vertices && e.dst < self.num_vertices);
        self.edges.push(e);
    }

    /// The edges as a slice.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterate over edges by value.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Consume into the raw edge vector.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Remove self loops in place, preserving order.
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|e| !e.is_self_loop());
    }

    /// Sort edges and remove exact duplicates in place.
    pub fn sort_dedup(&mut self) {
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Count of self loops currently present.
    pub fn self_loop_count(&self) -> usize {
        self.edges.iter().filter(|e| e.is_self_loop()).count()
    }

    /// Approximate in-memory footprint in bytes (edges only).
    ///
    /// Used to report the "Footprint" column of Table II: each edge is a
    /// pair of `u32`s plus the text representation overhead the paper's
    /// on-disk figure includes; we report the binary footprint.
    pub fn footprint_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<Edge>()
    }
}

impl IntoIterator for EdgeList {
    type Item = Edge;
    type IntoIter = std::vec::IntoIter<Edge>;
    fn into_iter(self) -> Self::IntoIter {
        self.edges.into_iter()
    }
}

impl<'a> IntoIterator for &'a EdgeList {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;
    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        let mut el = EdgeList::new(4);
        el.push(Edge::new(0, 1));
        el.push(Edge::new(1, 2));
        el.push(Edge::new(2, 2));
        el.push(Edge::new(1, 2));
        el.push(Edge::new(3, 0));
        el
    }

    #[test]
    fn basic_accessors() {
        let el = sample();
        assert_eq!(el.num_vertices(), 4);
        assert_eq!(el.num_edges(), 5);
        assert!(!el.is_empty());
        assert_eq!(el.avg_degree(), 5.0 / 4.0);
    }

    #[test]
    fn self_loop_detection_and_removal() {
        let mut el = sample();
        assert_eq!(el.self_loop_count(), 1);
        el.remove_self_loops();
        assert_eq!(el.self_loop_count(), 0);
        assert_eq!(el.num_edges(), 4);
    }

    #[test]
    fn sort_dedup_removes_duplicates_only() {
        let mut el = sample();
        el.sort_dedup();
        assert_eq!(el.num_edges(), 4); // one duplicate (1,2) removed
        let v: Vec<_> = el.iter().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(v, sorted);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_validates() {
        EdgeList::from_edges(2, vec![Edge::new(0, 5)]);
    }

    #[test]
    fn edge_helpers() {
        let e = Edge::new(3, 7);
        assert_eq!(e.reversed(), Edge::new(7, 3));
        assert!(!e.is_self_loop());
        assert!(Edge::new(4, 4).is_self_loop());
        assert_eq!(e.key(), (3u64 << 32) | 7);
        assert_eq!(e.to_string(), "3->7");
    }

    #[test]
    fn empty_graph_avg_degree_is_zero() {
        assert_eq!(EdgeList::new(0).avg_degree(), 0.0);
    }

    #[test]
    fn footprint_counts_edge_bytes() {
        let el = sample();
        assert_eq!(el.footprint_bytes(), 5 * 8);
    }
}
