//! Fallible, configurable graph construction.

use crate::{CoreError, Edge, EdgeList, Graph, VertexId};

/// Builder for [`Graph`] with validation and cleaning options.
///
/// ```
/// use hetgraph_core::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .dedup(true)
///     .drop_self_loops(true)
///     .add_edge(0, 1)
///     .add_edge(1, 1) // self loop: dropped
///     .add_edge(0, 1) // duplicate: dropped
///     .add_edge(2, 3)
///     .build()
///     .unwrap();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: u32,
    edges: Vec<Edge>,
    out_of_range: Option<(u64, u64)>,
    drop_self_loops: bool,
    dedup: bool,
}

impl GraphBuilder {
    /// Start building a graph over `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            out_of_range: None,
            drop_self_loops: false,
            dedup: false,
        }
    }

    /// Preallocate edge capacity.
    pub fn with_edge_capacity(mut self, capacity: usize) -> Self {
        self.edges.reserve(capacity);
        self
    }

    /// Drop self loops at build time.
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Sort and remove duplicate edges at build time. Note this changes the
    /// edge order to sorted order.
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Add a directed edge. Out-of-range endpoints are recorded and reported
    /// as an error by [`GraphBuilder::build`].
    pub fn add_edge(mut self, src: VertexId, dst: VertexId) -> Self {
        self.push_edge(src, dst);
        self
    }

    /// Add a directed edge through a mutable reference (loop-friendly form
    /// of [`GraphBuilder::add_edge`]).
    pub fn push_edge(&mut self, src: VertexId, dst: VertexId) {
        if src >= self.num_vertices || dst >= self.num_vertices {
            let bad = if src >= self.num_vertices { src } else { dst };
            self.out_of_range
                .get_or_insert((bad as u64, self.num_vertices as u64));
            return;
        }
        self.edges.push(Edge::new(src, dst));
    }

    /// Add many edges at once.
    pub fn extend_edges(mut self, iter: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        for (s, d) in iter {
            self.push_edge(s, d);
        }
        self
    }

    /// Number of edges currently staged (after any that were rejected).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finish building.
    ///
    /// # Errors
    /// Returns [`CoreError::VertexOutOfRange`] if any added edge referenced
    /// a vertex outside `[0, num_vertices)`.
    pub fn build(self) -> Result<Graph, CoreError> {
        if let Some((vertex, num_vertices)) = self.out_of_range {
            return Err(CoreError::VertexOutOfRange {
                vertex,
                num_vertices,
            });
        }
        let mut list = EdgeList::from_edges(self.num_vertices, self.edges);
        if self.drop_self_loops {
            list.remove_self_loops();
        }
        if self.dedup {
            list.sort_dedup();
        }
        Ok(Graph::from_edge_list(list))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_clean_graph() {
        let g = GraphBuilder::new(3)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.validate());
    }

    #[test]
    fn rejects_out_of_range() {
        let err = GraphBuilder::new(2).add_edge(0, 9).build().unwrap_err();
        match err {
            CoreError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                assert_eq!(vertex, 9);
                assert_eq!(num_vertices, 2);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn cleaning_options() {
        let g = GraphBuilder::new(3)
            .drop_self_loops(true)
            .dedup(true)
            .extend_edges([(0, 0), (0, 1), (0, 1), (2, 1)])
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn staged_edges_tracks_accepted_only() {
        let mut b = GraphBuilder::new(2);
        b.push_edge(0, 1);
        b.push_edge(0, 7); // rejected
        assert_eq!(b.staged_edges(), 1);
        assert!(b.build().is_err());
    }
}
