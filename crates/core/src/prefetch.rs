//! Software-prefetch shim for indirect hot loops.
//!
//! Graph kernels are dominated by dependent random loads: a CSR scan
//! produces a neighbor id, and the very next instruction needs that
//! neighbor's data line. Hardware prefetchers cannot follow the
//! indirection, so issuing explicit hints a fixed distance ahead of the
//! scan *can* hide the DRAM/TLB latency behind useful work.
//!
//! Measured caveat: on the repository's benchmark host these hints were
//! a net **loss** in the superstep kernel at every distance tried — the
//! hint dispatch cost more than the latency it hid — so the kernel does
//! not call them (see the fast-path notes in `DESIGN.md` §3b before
//! re-adding them). The shim stays available for targets where the
//! trade goes the other way.
//!
//! The shim is a *hint* in the strictest sense: it never reads or writes
//! memory architecturally, it cannot fault, and on targets without a
//! known prefetch instruction it compiles to nothing. Results are
//! therefore bit-identical with or without it — the determinism contract
//! of the superstep kernel is unaffected.

/// Hint that `slice[idx]` will be read soon. Out-of-range indices are
/// ignored (the common shape at the tail of a scan loop), so callers can
/// prefetch `i + DISTANCE` unconditionally.
#[inline(always)]
pub fn prefetch_slice<T>(slice: &[T], idx: usize) {
    if idx < slice.len() {
        // SAFETY: `idx` is in bounds, so the pointer is derived from a
        // live allocation; the hint never dereferences it.
        prefetch_ptr(unsafe { slice.as_ptr().add(idx) }.cast());
    }
}

/// Issue a read-prefetch hint (to all cache levels) for the line holding
/// `p`. Safe for any pointer: prefetch instructions are architecturally
/// non-faulting and never access memory as far as the abstract machine
/// is concerned.
#[inline(always)]
pub fn prefetch_ptr(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a non-faulting hint; SSE is part of the
    // x86_64 baseline target, so the intrinsic is always callable.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM is a non-faulting hint; the asm reads no
    // architectural state beyond the address register.
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{p}]", p = in(reg) p, options(nostack, preserves_flags, readonly));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_and_out_of_range_are_both_safe() {
        let v: Vec<u64> = (0..100).collect();
        for i in [0usize, 50, 99, 100, 10_000] {
            prefetch_slice(&v, i);
        }
        // Values are untouched by the hints.
        assert_eq!(v[50], 50);
    }

    #[test]
    fn empty_slice_is_safe() {
        let v: Vec<u8> = Vec::new();
        prefetch_slice(&v, 0);
        prefetch_slice(&v, 7);
    }
}
