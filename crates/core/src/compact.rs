//! Delta-varint compressed sparse row adjacency.
//!
//! A [`CompactCsr`] stores each vertex's neighbor list sorted ascending and
//! encoded as LEB128 varints of the *gaps* between consecutive neighbors
//! (the first gap is taken against 0, so every row decodes with one uniform
//! `prev += gap` loop). Sorted lists make every gap non-negative, so no
//! zigzag step is needed, and power-law graphs — where most gaps are small
//! because high-degree rows are dense — compress to ~2–3 bytes per edge
//! instead of the 4 bytes of a plain `u32` target plus the 8-byte `usize`
//! offsets of [`crate::Csr`].
//!
//! Two index arrays accompany the byte stream, both width-adaptive (`u32`
//! when every value fits, `u64` otherwise): cumulative *edge* offsets give
//! O(1) degrees (and let parallel per-edge lanes such as the engine's
//! machine assignments stay plain arrays aligned by edge index), and
//! cumulative *byte* offsets locate each row's varint span.
//!
//! Decoding is sequential per row — O(degree) — which is exactly the access
//! pattern of a gather/scatter kernel. Random single-neighbor access is not
//! supported and not needed.

use crate::{Csr, VertexId};

/// Append `x` to `out` as an LEB128 varint (7 payload bits per byte,
/// high bit = continuation).
#[inline]
pub fn encode_varint(mut x: u32, out: &mut Vec<u8>) {
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Decode one LEB128 varint from `data` starting at `*pos`, advancing
/// `*pos` past it.
///
/// # Panics
/// Panics (via slice indexing) if the stream ends inside a varint. The
/// encoder in this module never produces such a stream; `CompactCsr` data
/// is built in-process, not read from untrusted input.
#[inline]
pub fn decode_varint(data: &[u8], pos: &mut usize) -> u32 {
    let mut x = 0u32;
    let mut shift = 0u32;
    loop {
        let b = data[*pos];
        *pos += 1;
        x |= ((b & 0x7f) as u32) << shift;
        if b & 0x80 == 0 {
            return x;
        }
        shift += 7;
        debug_assert!(shift < 35, "varint longer than a u32");
    }
}

/// Width-adaptive offset index: `u32` arrays when every offset fits,
/// `u64` otherwise (graphs past ~4.29 G edges or compressed bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Index {
    /// Narrow index: all offsets fit in `u32`.
    U32 {
        /// Cumulative edge counts, length `n + 1`.
        edge: Vec<u32>,
        /// Cumulative byte positions into `data`, length `n + 1`.
        byte: Vec<u32>,
    },
    /// Wide index for graphs whose edge count or byte size exceeds `u32`.
    U64 {
        /// Cumulative edge counts, length `n + 1`.
        edge: Vec<u64>,
        /// Cumulative byte positions into `data`, length `n + 1`.
        byte: Vec<u64>,
    },
}

impl Index {
    #[inline]
    fn edge_range(&self, v: usize) -> (usize, usize) {
        match self {
            Index::U32 { edge, .. } => (edge[v] as usize, edge[v + 1] as usize),
            Index::U64 { edge, .. } => (edge[v] as usize, edge[v + 1] as usize),
        }
    }

    #[inline]
    fn byte_range(&self, v: usize) -> (usize, usize) {
        match self {
            Index::U32 { byte, .. } => (byte[v] as usize, byte[v + 1] as usize),
            Index::U64 { byte, .. } => (byte[v] as usize, byte[v + 1] as usize),
        }
    }

    fn resident_bytes(&self) -> usize {
        match self {
            Index::U32 { edge, byte } => (edge.len() + byte.len()) * 4,
            Index::U64 { edge, byte } => (edge.len() + byte.len()) * 8,
        }
    }
}

/// One direction of adjacency in delta-varint form: sorted neighbor lists,
/// gap-encoded, with width-adaptive edge and byte offset indexes.
///
/// Neighbor lists are *always sorted ascending* — construction sorts them —
/// so iteration order can differ from the insertion-ordered [`Csr`]. All
/// engine programs are insensitive to neighbor order (their gather folds
/// are commutative), which is what makes this drop-in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactCsr {
    num_vertices: u32,
    num_edges: usize,
    index: Index,
    data: Vec<u8>,
}

impl CompactCsr {
    /// Compress a plain CSR. Each row is copied, sorted ascending, and
    /// gap-encoded; the input is not mutated.
    pub fn from_csr(csr: &Csr) -> Self {
        let mut b = CompactCsrBuilder::new(csr.num_vertices());
        let mut row: Vec<VertexId> = Vec::new();
        for v in 0..csr.num_vertices() {
            row.clear();
            row.extend_from_slice(csr.neighbors(v));
            row.sort_unstable();
            b.push_row(&row);
        }
        b.finish()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of stored adjacency entries (== number of edges).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of vertex `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let (lo, hi) = self.index.edge_range(v as usize);
        hi - lo
    }

    /// Half-open edge-index range of `v`'s row: the slice positions its
    /// neighbors would occupy in a concatenated targets array. Per-edge
    /// side arrays (e.g. machine lanes) are indexed by this range.
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> (usize, usize) {
        self.index.edge_range(v as usize)
    }

    /// Decode `v`'s sorted neighbor list into `out` (cleared first).
    #[inline]
    pub fn decode_row_into(&self, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        out.reserve(self.degree(v));
        self.for_each_neighbor(v, |u| out.push(u));
    }

    /// Fused decode loop: call `f` with each neighbor of `v` in ascending
    /// order, without materializing the row.
    #[inline]
    pub fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        let (lo, hi) = self.index.byte_range(v as usize);
        let row = &self.data[lo..hi];
        let mut pos = 0usize;
        let mut prev = 0u32;
        while pos < row.len() {
            prev += decode_varint(row, &mut pos);
            f(prev);
        }
    }

    /// A decoding cursor over `v`'s sorted neighbors.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> CompactNeighbors<'_> {
        let (lo, hi) = self.index.byte_range(v as usize);
        CompactNeighbors {
            row: &self.data[lo..hi],
            pos: 0,
            prev: 0,
            remaining: self.degree(v),
        }
    }

    /// Resident footprint in bytes: varint data plus both offset indexes.
    /// This is the number the scale benchmark's RSS-per-edge gate audits.
    pub fn resident_bytes(&self) -> usize {
        self.data.len() + self.index.resident_bytes()
    }

    /// Whether the offset indexes use the narrow (`u32`) representation.
    pub fn narrow_index(&self) -> bool {
        matches!(self.index, Index::U32 { .. })
    }

    /// This direction's degree index, for [`meta_pair`].
    fn degree_index(&self) -> crate::meta::DegreeIndex<'_> {
        match &self.index {
            Index::U32 { edge, .. } => crate::meta::DegreeIndex::Narrow(edge),
            Index::U64 { edge, .. } => crate::meta::DegreeIndex::Narrow64(edge),
        }
    }
}

/// The [`crate::GraphMeta`] view over an out/in pair of compact
/// directions. Each direction's index width is chosen independently by
/// its builder, so the pair may mix narrow and wide.
///
/// # Panics
/// Debug builds assert both directions describe the same graph.
pub fn meta_pair<'a>(out: &'a CompactCsr, inn: &'a CompactCsr) -> crate::GraphMeta<'a> {
    debug_assert_eq!(out.num_vertices, inn.num_vertices);
    debug_assert_eq!(out.num_edges, inn.num_edges);
    crate::GraphMeta::from_parts(
        out.num_vertices,
        out.num_edges,
        out.degree_index(),
        inn.degree_index(),
    )
}

/// Sequential decoder over one vertex's sorted neighbor list.
#[derive(Debug, Clone)]
pub struct CompactNeighbors<'a> {
    row: &'a [u8],
    pos: usize,
    prev: u32,
    remaining: usize,
}

impl Iterator for CompactNeighbors<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.pos >= self.row.len() {
            return None;
        }
        self.prev += decode_varint(self.row, &mut self.pos);
        self.remaining -= 1;
        Some(self.prev)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for CompactNeighbors<'_> {}

/// Incremental [`CompactCsr`] constructor: feed rows in vertex order.
///
/// Rows must already be sorted ascending — the builder gap-encodes them
/// as given (debug builds assert sortedness). Used directly by callers
/// that interleave row construction with per-edge side arrays (the
/// engine's machine lanes) and by [`CompactCsr::from_csr`].
#[derive(Debug)]
pub struct CompactCsrBuilder {
    num_vertices: u32,
    rows_pushed: u32,
    edge_offsets: Vec<u64>,
    byte_offsets: Vec<u64>,
    data: Vec<u8>,
}

impl CompactCsrBuilder {
    /// Start a builder expecting exactly `num_vertices` rows.
    pub fn new(num_vertices: u32) -> Self {
        let mut edge_offsets = Vec::with_capacity(num_vertices as usize + 1);
        let mut byte_offsets = Vec::with_capacity(num_vertices as usize + 1);
        edge_offsets.push(0);
        byte_offsets.push(0);
        CompactCsrBuilder {
            num_vertices,
            rows_pushed: 0,
            edge_offsets,
            byte_offsets,
            data: Vec::new(),
        }
    }

    /// Append the next vertex's sorted neighbor list.
    ///
    /// # Panics
    /// Panics if more than `num_vertices` rows are pushed; debug builds
    /// also assert the row is sorted ascending.
    pub fn push_row(&mut self, sorted_neighbors: &[VertexId]) {
        assert!(
            self.rows_pushed < self.num_vertices,
            "row for vertex {} exceeds declared {} vertices",
            self.rows_pushed,
            self.num_vertices
        );
        debug_assert!(
            sorted_neighbors.windows(2).all(|w| w[0] <= w[1]),
            "neighbor row must be sorted ascending"
        );
        let mut prev = 0u32;
        for &u in sorted_neighbors {
            encode_varint(u - prev, &mut self.data);
            prev = u;
        }
        self.rows_pushed += 1;
        let edges = *self.edge_offsets.last().expect("seeded") + sorted_neighbors.len() as u64;
        self.edge_offsets.push(edges);
        self.byte_offsets.push(self.data.len() as u64);
    }

    /// Finish construction, choosing the narrow index when it fits.
    ///
    /// # Panics
    /// Panics if fewer than `num_vertices` rows were pushed.
    pub fn finish(self) -> CompactCsr {
        assert_eq!(
            self.rows_pushed, self.num_vertices,
            "builder finished after {} of {} rows",
            self.rows_pushed, self.num_vertices
        );
        let num_edges = *self.edge_offsets.last().expect("seeded") as usize;
        let max = (num_edges as u64).max(self.data.len() as u64);
        let index = if max <= u32::MAX as u64 {
            Index::U32 {
                edge: self.edge_offsets.iter().map(|&x| x as u32).collect(),
                byte: self.byte_offsets.iter().map(|&x| x as u32).collect(),
            }
        } else {
            Index::U64 {
                edge: self.edge_offsets,
                byte: self.byte_offsets,
            }
        };
        CompactCsr {
            num_vertices: self.num_vertices,
            num_edges,
            index,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Edge;

    #[test]
    fn varint_roundtrip_boundaries() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 16383, 16384, 1 << 21, u32::MAX];
        for &v in &values {
            encode_varint(v, &mut buf);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(decode_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_single_byte_for_small_values() {
        let mut buf = Vec::new();
        encode_varint(127, &mut buf);
        assert_eq!(buf.len(), 1);
        encode_varint(128, &mut buf);
        assert_eq!(buf.len(), 3);
    }

    fn sample_csr() -> Csr {
        Csr::from_edges(
            5,
            &[
                Edge::new(0, 4),
                Edge::new(0, 1),
                Edge::new(0, 1), // duplicate: zero gap must survive
                Edge::new(2, 3),
                Edge::new(4, 0),
                Edge::new(4, 2),
            ],
        )
    }

    #[test]
    fn rows_decode_to_sorted_plain_rows() {
        let csr = sample_csr();
        let compact = CompactCsr::from_csr(&csr);
        assert_eq!(compact.num_vertices(), 5);
        assert_eq!(compact.num_edges(), csr.num_edges());
        let mut row = Vec::new();
        for v in 0..5 {
            let mut plain = csr.neighbors(v).to_vec();
            plain.sort_unstable();
            compact.decode_row_into(v, &mut row);
            assert_eq!(row, plain, "row {v}");
            assert_eq!(compact.degree(v), csr.degree(v), "degree {v}");
            let cursor: Vec<_> = compact.neighbors(v).collect();
            assert_eq!(cursor, plain, "cursor row {v}");
            assert_eq!(compact.neighbors(v).len(), plain.len());
        }
    }

    #[test]
    fn edge_ranges_match_cumulative_degrees() {
        let compact = CompactCsr::from_csr(&sample_csr());
        let mut cursor = 0usize;
        for v in 0..5 {
            let (lo, hi) = compact.edge_range(v);
            assert_eq!(lo, cursor);
            cursor += compact.degree(v);
            assert_eq!(hi, cursor);
        }
        assert_eq!(cursor, compact.num_edges());
    }

    #[test]
    fn for_each_matches_cursor() {
        let compact = CompactCsr::from_csr(&sample_csr());
        for v in 0..5 {
            let mut pushed = Vec::new();
            compact.for_each_neighbor(v, |u| pushed.push(u));
            let iterated: Vec<_> = compact.neighbors(v).collect();
            assert_eq!(pushed, iterated);
        }
    }

    #[test]
    fn empty_graph() {
        let compact = CompactCsr::from_csr(&Csr::from_edges(3, &[]));
        assert_eq!(compact.num_edges(), 0);
        for v in 0..3 {
            assert_eq!(compact.degree(v), 0);
            assert_eq!(compact.neighbors(v).count(), 0);
        }
    }

    #[test]
    fn dense_small_rows_take_about_one_byte_per_edge() {
        // Ring graph: every gap is tiny, so each edge is one varint byte.
        let edges: Vec<Edge> = (0..1000u32).map(|v| Edge::new(v, (v + 1) % 1000)).collect();
        let compact = CompactCsr::from_csr(&Csr::from_edges(1000, &edges));
        let data_bytes = compact.resident_bytes() - 2 * 1001 * 4;
        assert!(
            data_bytes <= 2 * edges.len(),
            "{data_bytes} bytes for {} edges",
            edges.len()
        );
        assert!(compact.narrow_index());
    }

    #[test]
    fn builder_rejects_row_overflow() {
        let mut b = CompactCsrBuilder::new(1);
        b.push_row(&[0]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.push_row(&[0])));
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "of 2 rows")]
    fn builder_rejects_missing_rows() {
        let b = CompactCsrBuilder::new(2);
        b.finish();
    }

    #[test]
    fn meta_pair_reports_both_directions() {
        let edges = [Edge::new(0, 4), Edge::new(0, 1), Edge::new(2, 0)];
        let out = CompactCsr::from_csr(&Csr::from_edges(5, &edges));
        let inn = CompactCsr::from_csr(&Csr::from_edges_reversed(5, &edges));
        let m = meta_pair(&out, &inn);
        assert_eq!(m.num_vertices(), 5);
        assert_eq!(m.num_edges(), 3);
        assert_eq!(m.out_degree(0), 2);
        assert_eq!(m.in_degree(0), 1);
        assert_eq!(m.degree(0), 3);
        assert_eq!(m.max_total_degree(), 3);
    }

    #[test]
    fn resident_bytes_accounts_index_and_data() {
        let compact = CompactCsr::from_csr(&sample_csr());
        // 2 indexes x 6 entries x 4 bytes (narrow) + at least one data byte
        // per edge.
        assert!(compact.resident_bytes() >= 2 * 6 * 4 + compact.num_edges());
    }
}
