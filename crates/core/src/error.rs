//! Error type for the graph substrate.

/// Errors produced while building, validating, or (de)serializing graphs.
#[derive(Debug)]
pub enum CoreError {
    /// An edge references a vertex id outside `[0, num_vertices)`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph.
        num_vertices: u64,
    },
    /// The graph would exceed the `u32` vertex-id space.
    TooManyVertices(u64),
    /// A parse error while reading a text edge list.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what failed to parse.
        message: String,
    },
    /// A malformed binary graph file.
    BadBinaryFormat(String),
    /// An underlying IO error.
    Io(std::io::Error),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex id {vertex} out of range for graph with {num_vertices} vertices"
            ),
            CoreError::TooManyVertices(n) => {
                write!(f, "{n} vertices exceeds the u32 vertex-id space")
            }
            CoreError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            CoreError::BadBinaryFormat(msg) => write!(f, "bad binary graph file: {msg}"),
            CoreError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
        let e = CoreError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e: CoreError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(e.source().is_some());
    }
}
