//! Graph (de)serialization: SNAP-style text edge lists and a compact binary
//! format.
//!
//! The text format matches what the paper's SNAP datasets use: one
//! `src<whitespace>dst` pair per line, `#`-prefixed comment lines ignored.
//! The binary format is a little-endian `u32` header + edge pairs, ~4x
//! smaller and much faster to load; the generators use it to cache large
//! catalogs between experiment runs.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{CoreError, Edge, EdgeList, Graph};

const BINARY_MAGIC: &[u8; 8] = b"HETGRAF1";

/// Write a graph as a SNAP-style text edge list.
pub fn write_text<W: Write>(writer: W, graph: &Graph) -> Result<(), CoreError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# hetgraph edge list")?;
    writeln!(w, "# vertices: {}", graph.num_vertices())?;
    writeln!(w, "# edges: {}", graph.num_edges())?;
    for e in graph.edges() {
        writeln!(w, "{}\t{}", e.src, e.dst)?;
    }
    w.flush()?;
    Ok(())
}

/// Read a SNAP-style text edge list.
///
/// `num_vertices` may be `None`, in which case it is inferred as
/// `max(vertex id) + 1`. Comment lines start with `#`.
pub fn read_text<R: Read>(reader: R, num_vertices: Option<u32>) -> Result<EdgeList, CoreError> {
    let r = BufReader::new(reader);
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_v: u64 = 0;
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |tok: Option<&str>, idx: usize| -> Result<u64, CoreError> {
            let tok = tok.ok_or_else(|| CoreError::Parse {
                line: idx + 1,
                message: "expected two vertex ids".into(),
            })?;
            tok.parse::<u64>().map_err(|_| CoreError::Parse {
                line: idx + 1,
                message: format!("invalid vertex id {tok:?}"),
            })
        };
        let s = parse(parts.next(), idx)?;
        let d = parse(parts.next(), idx)?;
        if parts.next().is_some() {
            return Err(CoreError::Parse {
                line: idx + 1,
                message: "trailing tokens after edge".into(),
            });
        }
        max_v = max_v.max(s).max(d);
        if max_v >= u32::MAX as u64 {
            return Err(CoreError::TooManyVertices(max_v + 1));
        }
        edges.push(Edge::new(s as u32, d as u32));
    }
    let inferred = if edges.is_empty() {
        0
    } else {
        max_v as u32 + 1
    };
    let n = match num_vertices {
        Some(n) => {
            if (inferred as u64) > n as u64 {
                return Err(CoreError::VertexOutOfRange {
                    vertex: max_v,
                    num_vertices: n as u64,
                });
            }
            n
        }
        None => inferred,
    };
    Ok(EdgeList::from_edges(n, edges))
}

/// Write a graph in the compact binary format.
pub fn write_binary<W: Write>(writer: W, graph: &Graph) -> Result<(), CoreError> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&graph.num_vertices().to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    for e in graph.edges() {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Read a graph from the compact binary format.
pub fn read_binary<R: Read>(reader: R) -> Result<EdgeList, CoreError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| CoreError::BadBinaryFormat("truncated magic".into()))?;
    if &magic != BINARY_MAGIC {
        return Err(CoreError::BadBinaryFormat("wrong magic bytes".into()));
    }
    let mut buf4 = [0u8; 4];
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf4)
        .map_err(|_| CoreError::BadBinaryFormat("truncated vertex count".into()))?;
    let n = u32::from_le_bytes(buf4);
    r.read_exact(&mut buf8)
        .map_err(|_| CoreError::BadBinaryFormat("truncated edge count".into()))?;
    let m = u64::from_le_bytes(buf8) as usize;
    let mut edges = Vec::with_capacity(m);
    let mut pair = [0u8; 8];
    for i in 0..m {
        r.read_exact(&mut pair)
            .map_err(|_| CoreError::BadBinaryFormat(format!("truncated at edge {i}")))?;
        let src = u32::from_le_bytes(pair[0..4].try_into().expect("4 bytes"));
        let dst = u32::from_le_bytes(pair[4..8].try_into().expect("4 bytes"));
        if src >= n || dst >= n {
            return Err(CoreError::VertexOutOfRange {
                vertex: src.max(dst) as u64,
                num_vertices: n as u64,
            });
        }
        edges.push(Edge::new(src, dst));
    }
    Ok(EdgeList::from_edges(n, edges))
}

/// Convenience: write binary to a filesystem path.
pub fn save_binary(path: &Path, graph: &Graph) -> Result<(), CoreError> {
    write_binary(std::fs::File::create(path)?, graph)
}

/// Convenience: read binary from a filesystem path.
pub fn load_binary(path: &Path) -> Result<Graph, CoreError> {
    Ok(Graph::from_edge_list(read_binary(std::fs::File::open(
        path,
    )?)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    fn sample_graph() -> Graph {
        Graph::from_edge_list(EdgeList::from_edges(
            5,
            vec![Edge::new(0, 1), Edge::new(3, 4), Edge::new(4, 0)],
        ))
    }

    #[test]
    fn text_roundtrip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_text(&mut buf, &g).unwrap();
        let el = read_text(buf.as_slice(), Some(5)).unwrap();
        assert_eq!(el.num_vertices(), 5);
        assert_eq!(el.edges(), g.edges());
    }

    #[test]
    fn text_infers_vertex_count() {
        let el = read_text("0 1\n7 2\n".as_bytes(), None).unwrap();
        assert_eq!(el.num_vertices(), 8);
        assert_eq!(el.num_edges(), 2);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let input = "# header\n\n0\t1\n# mid\n1 2\n";
        let el = read_text(input.as_bytes(), None).unwrap();
        assert_eq!(el.num_edges(), 2);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(matches!(
            read_text("0 x\n".as_bytes(), None),
            Err(CoreError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_text("0\n".as_bytes(), None),
            Err(CoreError::Parse { .. })
        ));
        assert!(matches!(
            read_text("0 1 2\n".as_bytes(), None),
            Err(CoreError::Parse { .. })
        ));
    }

    #[test]
    fn text_rejects_vertex_over_declared_count() {
        assert!(matches!(
            read_text("0 9\n".as_bytes(), Some(5)),
            Err(CoreError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_binary(&mut buf, &g).unwrap();
        let el = read_binary(buf.as_slice()).unwrap();
        assert_eq!(el.num_vertices(), 5);
        assert_eq!(el.edges(), g.edges());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTMAGIC........"[..]).unwrap_err();
        assert!(matches!(err, CoreError::BadBinaryFormat(_)));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_binary(&mut buf, &g).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_binary(buf.as_slice()),
            Err(CoreError::BadBinaryFormat(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hetgraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = sample_graph();
        save_binary(&path, &g).unwrap();
        let g2 = load_binary(&path).unwrap();
        assert_eq!(g2.edges(), g.edges());
        std::fs::remove_file(&path).ok();
    }
}
