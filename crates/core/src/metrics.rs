//! Zero-cost-when-disabled metrics: counters, gauges, and mergeable
//! log-bucketed histograms.
//!
//! This module is the aggregation companion to [`crate::obs`]: where a
//! [`crate::obs::Recorder`] captures an *event stream* (every span, in
//! order), a [`MetricsRegistry`] keeps *running aggregates* (how many, how
//! long, what distribution) that survive a run as a compact
//! [`MetricsSnapshot`] in JSON or Prometheus text exposition format.
//!
//! # Contract (mirrors `obs::Recorder`)
//!
//! - **Zero-cost when disabled.** [`MetricsRegistry::disabled`] (and the
//!   [`NOOP`] static) hand out handles whose inner `Arc` is `None`; every
//!   `inc`/`observe` on them is a single branch on an immediate. Call
//!   sites guard any setup work behind [`MetricsRegistry::enabled`],
//!   exactly like `recorder.enabled()`.
//! - **Two time domains.** Every metric is tagged [`TimeDomain::Sim`]
//!   (derived from the simulation's cost model — deterministic) or
//!   [`TimeDomain::Wall`] (host clock — not). Sim-domain metrics may only
//!   be recorded from serial kernel sections, so a sim-only snapshot
//!   ([`MetricsRegistry::snapshot_sim`]) serializes byte-identically at
//!   any host thread count.
//! - **Deterministic aggregation.** Histograms store *only* integer
//!   bucket counts (`u64`, relaxed atomics) — no floating-point running
//!   sum, whose non-associativity would make merge order observable.
//!   Means and quantiles are derived from the bucket bounds at snapshot
//!   time, so shard-merge order and thread count can never change a
//!   snapshot.
//!
//! # Bucketing
//!
//! Histogram buckets are logarithmic with [`SUB_BUCKETS_PER_OCTAVE`] (4)
//! sub-buckets per power of two, spanning unbiased exponents −40..=23
//! (≈`9.1e-13` to `1.7e7` — nanoseconds to months when observing
//! seconds), which is [`NUM_BUCKETS`] (256) buckets plus explicit
//! zero/underflow/overflow counts. The bucket index is computed purely
//! from the `f64` bit pattern (biased exponent + top two mantissa bits),
//! with no `libm` calls, so bucketing is bit-identical on every platform.
//! Each bucket covers the half-open value range
//! `[bucket_lower_bound(i), bucket_upper_bound(i))`; both bounds are
//! exactly representable, and relative bucket width is ≤ 25%.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::obs::TimeDomain;

/// Number of histogram sub-buckets per power of two (octave).
pub const SUB_BUCKETS_PER_OCTAVE: usize = 4;
/// Smallest unbiased exponent covered by the finite buckets (2^-40).
const EXP_LO: i32 = -40;
/// Largest unbiased exponent covered by the finite buckets (2^23..2^24).
const EXP_HI: i32 = 23;
/// Total number of finite histogram buckets.
pub const NUM_BUCKETS: usize = (EXP_HI - EXP_LO + 1) as usize * SUB_BUCKETS_PER_OCTAVE;

/// `2^e` for `e` in the normal range, computed exactly via bit assembly.
#[inline]
fn exp2i(e: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&e));
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// Where an observed value lands in the bucket layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BucketPos {
    /// Exactly zero (either sign).
    Zero,
    /// Positive but below the bucketed range, or out-of-domain
    /// (negative / NaN).
    Underflow,
    /// At or above the top of the bucketed range (incl. `+inf`).
    Overflow,
    /// Finite bucket index in `0..NUM_BUCKETS`.
    Bucket(usize),
}

/// Classify a value into the bucket layout using only its bit pattern.
#[inline]
fn bucket_pos(v: f64) -> BucketPos {
    if v == 0.0 {
        return BucketPos::Zero;
    }
    if v < 0.0 || v.is_nan() {
        // Negative or NaN: out of the histogram's domain. Counted as
        // underflow so no observation is ever silently dropped.
        return BucketPos::Underflow;
    }
    if v.is_infinite() {
        return BucketPos::Overflow;
    }
    let bits = v.to_bits();
    // Subnormals have biased exponent 0 → unbiased −1023 → underflow.
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < EXP_LO {
        BucketPos::Underflow
    } else if exp > EXP_HI {
        BucketPos::Overflow
    } else {
        let sub = ((bits >> 50) & 0b11) as usize;
        BucketPos::Bucket((exp - EXP_LO) as usize * SUB_BUCKETS_PER_OCTAVE + sub)
    }
}

/// Inclusive lower bound of finite bucket `idx` (exactly representable).
pub fn bucket_lower_bound(idx: usize) -> f64 {
    assert!(idx < NUM_BUCKETS);
    let octave = EXP_LO + (idx / SUB_BUCKETS_PER_OCTAVE) as i32;
    let sub = idx % SUB_BUCKETS_PER_OCTAVE;
    exp2i(octave) * (1.0 + sub as f64 * 0.25)
}

/// Recover a bucket's inclusive lower bound from its exact `le` upper
/// bound by decrementing the top two mantissa bits (with an octave
/// borrow when `le` is a power of two). Exact for every `le` the
/// bucket layout produces.
fn lower_from_le(le: f64) -> f64 {
    debug_assert!(le.is_finite() && le > 0.0);
    let bits = le.to_bits();
    if (bits >> 50) & 0b11 == 0 {
        // le = 2^k: the bucket below it is [1.75·2^(k-1), 2^k).
        f64::from_bits((bits - (1u64 << 52)) | (0b11 << 50))
    } else {
        f64::from_bits(bits - (1u64 << 50))
    }
}

/// Exclusive upper bound of finite bucket `idx` (exactly representable).
///
/// This is the `le` value the Prometheus exposition reports for the
/// bucket; values exactly on the bound land in the next bucket up, a
/// half-open-vs-closed mismatch of at most one representable value that
/// the exposition accepts for the sake of exact bounds.
pub fn bucket_upper_bound(idx: usize) -> f64 {
    assert!(idx < NUM_BUCKETS);
    let octave = EXP_LO + (idx / SUB_BUCKETS_PER_OCTAVE) as i32;
    let sub = idx % SUB_BUCKETS_PER_OCTAVE;
    exp2i(octave) * (1.0 + (sub as f64 + 1.0) * 0.25)
}

// ---------------------------------------------------------------------------
// Shared metric cores (atomics behind `Arc`, written by handles)
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct CounterCore {
    value: AtomicU64,
}

#[derive(Debug)]
struct GaugeCore {
    bits: AtomicU64,
}

#[derive(Debug)]
struct HistogramCore {
    zero: AtomicU64,
    underflow: AtomicU64,
    overflow: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            zero: AtomicU64::new(0),
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Monotone counter handle. Cheap to clone; a disabled handle ignores
/// every operation with a single branch.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<CounterCore>>);

impl Counter {
    /// A handle that drops every update (what disabled registries return).
    pub const fn noop() -> Self {
        Counter(None)
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.0 {
            core.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a noop handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// Last-value gauge handle. Cheap to clone; disabled handles drop updates.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCore>>);

impl Gauge {
    /// A handle that drops every update.
    pub const fn noop() -> Self {
        Gauge(None)
    }

    /// Set the gauge to `v` (last write wins).
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a noop or never-set handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.bits.load(Ordering::Relaxed)))
    }
}

/// Log-bucketed histogram handle. Cheap to clone; disabled handles drop
/// observations.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A handle that drops every observation.
    pub const fn noop() -> Self {
        Histogram(None)
    }

    /// Whether this handle is wired to a live registry. Lets call sites
    /// skip building observation values that only feed this histogram.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(core) = &self.0 {
            match bucket_pos(v) {
                BucketPos::Zero => core.zero.fetch_add(1, Ordering::Relaxed),
                BucketPos::Underflow => core.underflow.fetch_add(1, Ordering::Relaxed),
                BucketPos::Overflow => core.overflow.fetch_add(1, Ordering::Relaxed),
                BucketPos::Bucket(i) => core.buckets[i].fetch_add(1, Ordering::Relaxed),
            };
        }
    }

    /// Fold a per-thread [`HistogramShard`] into this histogram: one
    /// relaxed `fetch_add` per *touched* bucket instead of one per
    /// observation. Because both sides hold only integer counts the
    /// result is independent of merge order.
    pub fn merge_shard(&self, shard: &HistogramShard) {
        if let Some(core) = &self.0 {
            if shard.zero > 0 {
                core.zero.fetch_add(shard.zero, Ordering::Relaxed);
            }
            if shard.underflow > 0 {
                core.underflow.fetch_add(shard.underflow, Ordering::Relaxed);
            }
            if shard.overflow > 0 {
                core.overflow.fetch_add(shard.overflow, Ordering::Relaxed);
            }
            for (i, &n) in shard.buckets.iter().enumerate() {
                if n > 0 {
                    core.buckets[i].fetch_add(n, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Per-thread, non-atomic staging buffer for histogram observations —
/// the metrics analogue of `obs::TraceBuffer`. Workers observe into a
/// local shard and fold it into the shared [`Histogram`] once
/// ([`Histogram::merge_shard`]), paying one atomic add per touched
/// bucket rather than per sample.
#[derive(Debug, Clone)]
pub struct HistogramShard {
    zero: u64,
    underflow: u64,
    overflow: u64,
    buckets: [u64; NUM_BUCKETS],
}

impl Default for HistogramShard {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramShard {
    /// Empty shard.
    pub fn new() -> Self {
        HistogramShard {
            zero: 0,
            underflow: 0,
            overflow: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }

    /// Record one observation into the shard.
    #[inline]
    pub fn observe(&mut self, v: f64) {
        match bucket_pos(v) {
            BucketPos::Zero => self.zero += 1,
            BucketPos::Underflow => self.underflow += 1,
            BucketPos::Overflow => self.overflow += 1,
            BucketPos::Bucket(i) => self.buckets[i] += 1,
        }
    }

    /// Total observations staged in this shard.
    pub fn count(&self) -> u64 {
        self.zero + self.underflow + self.overflow + self.buckets.iter().sum::<u64>()
    }

    /// Whether the shard holds no observations.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Fold another shard into this one (integer adds — commutative and
    /// associative, so any merge tree yields identical counts).
    pub fn merge(&mut self, other: &HistogramShard) {
        self.zero += other.zero;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Slot {
    Counter(TimeDomain, Arc<CounterCore>),
    Gauge(TimeDomain, Arc<GaugeCore>),
    Histogram(TimeDomain, Arc<HistogramCore>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(..) => "counter",
            Slot::Gauge(..) => "gauge",
            Slot::Histogram(..) => "histogram",
        }
    }

    fn domain(&self) -> TimeDomain {
        match self {
            Slot::Counter(d, _) | Slot::Gauge(d, _) | Slot::Histogram(d, _) => *d,
        }
    }
}

/// Named registry of counters, gauges, and histograms.
///
/// Handles ([`Counter`], [`Gauge`], [`Histogram`]) are registered by name
/// once (the lock is taken only at registration and snapshot time) and
/// then updated lock-free via relaxed atomics. Registering the same name
/// twice returns a handle to the same underlying metric; re-registering
/// under a different kind or time domain panics — metric names are a
/// program-wide namespace and a collision is a bug at the call site.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    slots: Mutex<BTreeMap<String, Slot>>,
}

/// The shared always-disabled registry, for call sites that take a
/// `&MetricsRegistry` unconditionally (mirrors `obs::NOOP`).
pub static NOOP: MetricsRegistry = MetricsRegistry::disabled();

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A live registry that records everything.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: true,
            slots: Mutex::new(BTreeMap::new()),
        }
    }

    /// A registry that records nothing and allocates nothing. `const`, so
    /// it backs the [`NOOP`] static.
    pub const fn disabled() -> Self {
        MetricsRegistry {
            enabled: false,
            slots: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether this registry records anything. The entire cost of a
    /// disabled registry is this branch (plus a `None` check per handle
    /// operation), exactly like `Recorder::enabled`.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn slot<F>(&self, name: &str, make: F) -> Option<Slot>
    where
        F: FnOnce() -> Slot,
    {
        if !self.enabled {
            return None;
        }
        let mut slots = self.slots.lock().unwrap();
        let slot = slots.entry(name.to_string()).or_insert_with(make);
        Some(match slot {
            Slot::Counter(d, c) => Slot::Counter(*d, Arc::clone(c)),
            Slot::Gauge(d, c) => Slot::Gauge(*d, Arc::clone(c)),
            Slot::Histogram(d, c) => Slot::Histogram(*d, Arc::clone(c)),
        })
    }

    fn mismatch(name: &str, want: &str, got: &Slot) -> ! {
        panic!(
            "metric {name:?} already registered as a {:?}-domain {}, requested {want}",
            got.domain(),
            got.kind(),
        )
    }

    /// Register (or look up) a counter.
    pub fn counter(&self, name: &str, domain: TimeDomain) -> Counter {
        match self.slot(name, || {
            Slot::Counter(
                domain,
                Arc::new(CounterCore {
                    value: AtomicU64::new(0),
                }),
            )
        }) {
            None => Counter(None),
            Some(Slot::Counter(d, core)) if d == domain => Counter(Some(core)),
            Some(other) => Self::mismatch(name, "counter", &other),
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, domain: TimeDomain) -> Gauge {
        match self.slot(name, || {
            Slot::Gauge(
                domain,
                Arc::new(GaugeCore {
                    bits: AtomicU64::new(0),
                }),
            )
        }) {
            None => Gauge(None),
            Some(Slot::Gauge(d, core)) if d == domain => Gauge(Some(core)),
            Some(other) => Self::mismatch(name, "gauge", &other),
        }
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&self, name: &str, domain: TimeDomain) -> Histogram {
        match self.slot(name, || {
            Slot::Histogram(domain, Arc::new(HistogramCore::new()))
        }) {
            None => Histogram(None),
            Some(Slot::Histogram(d, core)) if d == domain => Histogram(Some(core)),
            Some(other) => Self::mismatch(name, "histogram", &other),
        }
    }

    /// Snapshot every metric, sorted by name within each section.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(domain, core) => snap.counters.push(CounterSnapshot {
                    name: name.clone(),
                    domain: *domain,
                    value: core.value.load(Ordering::Relaxed),
                }),
                Slot::Gauge(domain, core) => snap.gauges.push(GaugeSnapshot {
                    name: name.clone(),
                    domain: *domain,
                    value: f64::from_bits(core.bits.load(Ordering::Relaxed)),
                }),
                Slot::Histogram(domain, core) => {
                    let mut buckets = Vec::new();
                    for (i, b) in core.buckets.iter().enumerate() {
                        let count = b.load(Ordering::Relaxed);
                        if count > 0 {
                            buckets.push(HistogramBucket {
                                le: bucket_upper_bound(i),
                                count,
                            });
                        }
                    }
                    snap.histograms.push(HistogramSnapshot {
                        name: name.clone(),
                        domain: *domain,
                        zero: core.zero.load(Ordering::Relaxed),
                        underflow: core.underflow.load(Ordering::Relaxed),
                        overflow: core.overflow.load(Ordering::Relaxed),
                        buckets,
                    });
                }
            }
        }
        snap
    }

    /// Snapshot only the sim-domain metrics — the deterministic artifact.
    /// Its JSON and Prometheus serializations are byte-identical at any
    /// host thread count.
    pub fn snapshot_sim(&self) -> MetricsSnapshot {
        let mut snap = self.snapshot();
        snap.retain_domain(TimeDomain::Sim);
        snap
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct CounterSnapshot {
    /// Metric name (slash-separated path, e.g. `engine/supersteps_total`).
    pub name: String,
    /// Time domain the metric was recorded in.
    pub domain: TimeDomain,
    /// Counter value.
    pub value: u64,
}

/// Point-in-time value of one gauge.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Time domain the metric was recorded in.
    pub domain: TimeDomain,
    /// Last value set (0.0 if never set).
    pub value: f64,
}

/// One non-empty histogram bucket: `count` observations with values in
/// `[previous bound, le)`.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct HistogramBucket {
    /// Exclusive upper bound of the bucket (exactly representable).
    pub le: f64,
    /// Observations in this bucket (non-cumulative).
    pub count: u64,
}

/// Point-in-time state of one histogram: sparse non-empty buckets plus
/// explicit zero/underflow/overflow counts (kept out-of-band so the JSON
/// never needs a non-finite number).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Time domain the metric was recorded in.
    pub domain: TimeDomain,
    /// Observations exactly equal to zero.
    pub zero: u64,
    /// Positive observations below the bucketed range, plus out-of-domain
    /// (negative / NaN) observations.
    pub underflow: u64,
    /// Observations at or above the top of the bucketed range.
    pub overflow: u64,
    /// Non-empty buckets in ascending `le` order.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.zero
            + self.underflow
            + self.overflow
            + self.buckets.iter().map(|b| b.count).sum::<u64>()
    }

    /// Approximate sum of observations, reconstructed from bucket
    /// geometry: each bucket contributes its count times the arithmetic
    /// midpoint of its exact bounds (within 12.5% of the true sum for
    /// in-range values), zero and underflow contribute 0, and overflow
    /// contributes the top finite bound per observation. Midpoints of
    /// dyadic bounds are themselves exact, so the reconstruction is
    /// deterministic; never used where exactness matters (the counts
    /// themselves are exact).
    pub fn approx_sum(&self) -> f64 {
        let mut sum = 0.0;
        for b in &self.buckets {
            let mid = (lower_from_le(b.le) + b.le) * 0.5;
            sum += b.count as f64 * mid;
        }
        sum += self.overflow as f64 * bucket_upper_bound(NUM_BUCKETS - 1);
        sum
    }

    /// Approximate arithmetic mean of observations (bucket-midpoint
    /// reconstruction, see [`Self::approx_sum`]); `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            None
        } else {
            Some(self.approx_sum() / n as f64)
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: walks the cumulative counts
    /// and reports the upper bound of the bucket containing the rank
    /// (0.0 for the zero bucket, the bottom of the range for underflow,
    /// `f64::INFINITY` for overflow). `None` when empty or `q` is out of
    /// range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Rank of the q-quantile (1-based, nearest-rank definition).
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = self.zero;
        if rank <= seen {
            return Some(0.0);
        }
        seen += self.underflow;
        if rank <= seen {
            return Some(bucket_lower_bound(0));
        }
        for b in &self.buckets {
            seen += b.count;
            if rank <= seen {
                return Some(b.le);
            }
        }
        Some(f64::INFINITY)
    }

    /// Fold another histogram's counts into this one (integer adds; any
    /// merge order yields identical results). Panics if names or domains
    /// differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.name, other.name,
            "merging differently-named histograms"
        );
        assert_eq!(self.domain, other.domain, "merging across time domains");
        self.zero += other.zero;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        let mut by_le: BTreeMap<u64, u64> = self
            .buckets
            .iter()
            .map(|b| (b.le.to_bits(), b.count))
            .collect();
        for b in &other.buckets {
            *by_le.entry(b.le.to_bits()).or_insert(0) += b.count;
        }
        // Positive finite bounds sort identically by bits and by value.
        self.buckets = by_le
            .into_iter()
            .map(|(bits, count)| HistogramBucket {
                le: f64::from_bits(bits),
                count,
            })
            .collect();
    }
}

/// A full registry snapshot: every section sorted by metric name, so two
/// snapshots of the same recorded data serialize byte-identically.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Drop every metric not recorded in `domain`.
    pub fn retain_domain(&mut self, domain: TimeDomain) {
        self.counters.retain(|c| c.domain == domain);
        self.gauges.retain(|g| g.domain == domain);
        self.histograms.retain(|h| h.domain == domain);
    }

    /// Fold another snapshot into this one: counters and histogram
    /// buckets add; gauges are last-write-wins (the other snapshot's
    /// value replaces this one's, matching "later snapshot wins").
    /// Metrics unknown to `self` are inserted in name order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self
                .counters
                .binary_search_by(|x| x.name.as_str().cmp(&c.name))
            {
                Ok(i) => {
                    assert_eq!(
                        self.counters[i].domain, c.domain,
                        "merging across time domains"
                    );
                    self.counters[i].value += c.value;
                }
                Err(i) => self.counters.insert(i, c.clone()),
            }
        }
        for g in &other.gauges {
            match self
                .gauges
                .binary_search_by(|x| x.name.as_str().cmp(&g.name))
            {
                Ok(i) => {
                    assert_eq!(
                        self.gauges[i].domain, g.domain,
                        "merging across time domains"
                    );
                    self.gauges[i].value = g.value;
                }
                Err(i) => self.gauges.insert(i, g.clone()),
            }
        }
        for h in &other.histograms {
            match self
                .histograms
                .binary_search_by(|x| x.name.as_str().cmp(&h.name))
            {
                Ok(i) => self.histograms[i].merge(h),
                Err(i) => self.histograms.insert(i, h.clone()),
            }
        }
    }

    /// Convenience lookup: counter value by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Convenience lookup: gauge value by name.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Convenience lookup: histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Pretty-printed JSON document (trailing newline included). For a
    /// sim-domain snapshot this is byte-identical at any thread count:
    /// names are sorted, counts are integers, and every float
    /// (gauge values, bucket bounds) prints through the vendored
    /// `serde_json`'s stable shortest-round-trip formatter.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("snapshot serialization");
        s.push('\n');
        s
    }

    /// Parse a snapshot back from its [`Self::to_json`] serialization.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let section = |key: &str| -> Result<Vec<serde::Value>, String> {
            Ok(value
                .get(key)
                .and_then(serde::Value::as_seq)
                .ok_or_else(|| format!("metrics snapshot: missing array {key:?}"))?
                .to_vec())
        };
        let name_domain = |v: &serde::Value| -> Result<(String, TimeDomain), String> {
            let name = v
                .get("name")
                .and_then(serde::Value::as_str)
                .ok_or("metrics snapshot: entry without name")?
                .to_string();
            let domain = match v.get("domain").and_then(serde::Value::as_str) {
                Some("Sim") => TimeDomain::Sim,
                Some("Wall") => TimeDomain::Wall,
                other => return Err(format!("metrics snapshot {name:?}: bad domain {other:?}")),
            };
            Ok((name, domain))
        };
        let num =
            |v: &serde::Value, key: &str| v.get(key).and_then(serde::Value::as_u64).unwrap_or(0);
        let mut snap = MetricsSnapshot::default();
        for c in section("counters")? {
            let (name, domain) = name_domain(&c)?;
            snap.counters.push(CounterSnapshot {
                name,
                domain,
                value: num(&c, "value"),
            });
        }
        for g in section("gauges")? {
            let (name, domain) = name_domain(&g)?;
            let value = g.get("value").and_then(serde::Value::as_f64).unwrap_or(0.0);
            snap.gauges.push(GaugeSnapshot {
                name,
                domain,
                value,
            });
        }
        for h in section("histograms")? {
            let (name, domain) = name_domain(&h)?;
            let mut buckets = Vec::new();
            for b in h
                .get("buckets")
                .and_then(serde::Value::as_seq)
                .unwrap_or(&[])
            {
                let le = b
                    .get("le")
                    .and_then(serde::Value::as_f64)
                    .ok_or_else(|| format!("metrics snapshot {name:?}: bucket without le"))?;
                buckets.push(HistogramBucket {
                    le,
                    count: num(b, "count"),
                });
            }
            snap.histograms.push(HistogramSnapshot {
                name,
                domain,
                zero: num(&h, "zero"),
                underflow: num(&h, "underflow"),
                overflow: num(&h, "overflow"),
                buckets,
            });
        }
        Ok(snap)
    }

    /// Prometheus text exposition (format 0.0.4).
    ///
    /// Metric names are prefixed `hetgraph_` and sanitized (`[^a-zA-Z0-9_:]`
    /// → `_`); the time domain becomes a `domain` label. Histograms emit
    /// cumulative `_bucket{le="..."}` series (zero and underflow counts
    /// fold into the cumulative base; `+Inf` covers overflow), an
    /// approximate `_sum` (bucket-midpoint reconstruction, see
    /// [`HistogramSnapshot::approx_sum`]), and an exact `_count`. Floats
    /// print through `serde_json::format_float`, so a sim-domain
    /// exposition is byte-stable.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 9);
            out.push_str("hetgraph_");
            for ch in name.chars() {
                if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
                    out.push(ch);
                } else {
                    out.push('_');
                }
            }
            out
        }
        fn domain_label(domain: TimeDomain) -> &'static str {
            match domain {
                TimeDomain::Sim => "sim",
                TimeDomain::Wall => "wall",
            }
        }
        fn fmt(v: f64) -> String {
            serde_json::format_float(v)
        }
        let mut out = String::new();
        for c in &self.counters {
            let name = sanitize(&c.name);
            let d = domain_label(c.domain);
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name}{{domain=\"{d}\"}} {}\n", c.value));
        }
        for g in &self.gauges {
            let name = sanitize(&g.name);
            let d = domain_label(g.domain);
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!("{name}{{domain=\"{d}\"}} {}\n", fmt(g.value)));
        }
        for h in &self.histograms {
            let name = sanitize(&h.name);
            let d = domain_label(h.domain);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = h.zero + h.underflow;
            for b in &h.buckets {
                cumulative += b.count;
                out.push_str(&format!(
                    "{name}_bucket{{domain=\"{d}\",le=\"{}\"}} {cumulative}\n",
                    fmt(b.le)
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{{domain=\"{d}\",le=\"+Inf\"}} {}\n",
                h.count()
            ));
            out.push_str(&format!(
                "{name}_sum{{domain=\"{d}\"}} {}\n",
                fmt(h.approx_sum())
            ));
            out.push_str(&format!("{name}_count{{domain=\"{d}\"}} {}\n", h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn disabled_registry_hands_out_inert_handles() {
        let m = MetricsRegistry::disabled();
        assert!(!m.enabled());
        let c = m.counter("c", TimeDomain::Sim);
        let g = m.gauge("g", TimeDomain::Sim);
        let h = m.histogram("h", TimeDomain::Wall);
        c.inc();
        c.add(10);
        g.set(3.5);
        h.observe(1.0);
        assert!(!h.is_live());
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        let snap = m.snapshot();
        assert_eq!(snap, MetricsSnapshot::default());
        // The shared static behaves the same.
        assert!(!NOOP.enabled());
        NOOP.counter("x", TimeDomain::Wall).inc();
        assert_eq!(NOOP.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn counter_and_gauge_roundtrip_through_snapshot() {
        let m = MetricsRegistry::new();
        let c = m.counter("engine/supersteps_total", TimeDomain::Sim);
        c.add(7);
        // Re-registering the same name returns the same counter.
        m.counter("engine/supersteps_total", TimeDomain::Sim).inc();
        let g = m.gauge("engine/imbalance", TimeDomain::Sim);
        g.set(1.25);
        g.set(1.5);
        let snap = m.snapshot();
        assert_eq!(snap.counter_value("engine/supersteps_total"), Some(8));
        assert_eq!(snap.gauge_value("engine/imbalance"), Some(1.5));
        assert_eq!(snap.counter_value("missing"), None);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collision_panics() {
        let m = MetricsRegistry::new();
        let _c = m.counter("x", TimeDomain::Sim);
        let _g = m.gauge("x", TimeDomain::Sim);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn domain_collision_panics() {
        let m = MetricsRegistry::new();
        let _a = m.counter("x", TimeDomain::Sim);
        let _b = m.counter("x", TimeDomain::Wall);
    }

    #[test]
    fn bucket_bounds_bracket_observations() {
        // For a spread of magnitudes, the chosen bucket's bounds must
        // bracket the value half-open.
        let mut rng = crate::SplitMix64::new(0x5eed);
        for _ in 0..10_000 {
            // Log-uniform over the full bucketed range.
            let e = (rng.next_u64() % 64) as i32 + EXP_LO;
            let frac = 1.0 + (rng.next_u64() % 1_000_000) as f64 / 1_000_000.0;
            let v = exp2i(e) * frac;
            match bucket_pos(v) {
                BucketPos::Bucket(i) => {
                    assert!(
                        bucket_lower_bound(i) <= v && v < bucket_upper_bound(i),
                        "v={v} not in [{}, {}) (bucket {i})",
                        bucket_lower_bound(i),
                        bucket_upper_bound(i),
                    );
                }
                other => panic!("v={v} landed in {other:?}"),
            }
        }
    }

    #[test]
    fn bucket_edges_and_special_values() {
        assert_eq!(bucket_pos(0.0), BucketPos::Zero);
        assert_eq!(bucket_pos(-0.0), BucketPos::Zero);
        assert_eq!(bucket_pos(-1.0), BucketPos::Underflow);
        assert_eq!(bucket_pos(f64::NAN), BucketPos::Underflow);
        assert_eq!(bucket_pos(f64::INFINITY), BucketPos::Overflow);
        assert_eq!(bucket_pos(1e-300), BucketPos::Underflow);
        assert_eq!(bucket_pos(1e300), BucketPos::Overflow);
        // 1.0 = 2^0 → first sub-bucket of octave 0−EXP_LO.
        assert_eq!(
            bucket_pos(1.0),
            BucketPos::Bucket((-EXP_LO) as usize * SUB_BUCKETS_PER_OCTAVE)
        );
        // Exactly on a sub-bucket bound → next bucket up (half-open).
        let idx = (-EXP_LO) as usize * SUB_BUCKETS_PER_OCTAVE;
        assert_eq!(bucket_pos(1.25), BucketPos::Bucket(idx + 1));
        assert_eq!(bucket_upper_bound(idx), 1.25);
        assert_eq!(bucket_lower_bound(idx + 1), 1.25);
        // Bottom and top of the range.
        assert_eq!(bucket_pos(exp2i(EXP_LO)), BucketPos::Bucket(0));
        assert_eq!(bucket_pos(exp2i(EXP_HI + 1)), BucketPos::Overflow);
        let top = NUM_BUCKETS - 1;
        assert_eq!(bucket_upper_bound(top), exp2i(EXP_HI + 1));
    }

    #[test]
    fn histogram_snapshot_counts_means_quantiles() {
        let m = MetricsRegistry::new();
        let h = m.histogram("t", TimeDomain::Sim);
        assert!(h.is_live());
        h.observe(0.0);
        for _ in 0..10 {
            h.observe(1.0);
        }
        h.observe(100.0);
        h.observe(f64::INFINITY);
        h.observe(-3.0);
        let snap = m.snapshot();
        let hs = snap.histogram("t").unwrap();
        assert_eq!(hs.count(), 14);
        assert_eq!(hs.zero, 1);
        assert_eq!(hs.underflow, 1);
        assert_eq!(hs.overflow, 1);
        // p50 falls in the 1.0 bucket → its upper bound 1.25.
        assert_eq!(hs.quantile(0.5), Some(1.25));
        assert_eq!(hs.quantile(0.0), Some(0.0));
        assert_eq!(hs.quantile(1.0), Some(f64::INFINITY));
        assert_eq!(hs.quantile(2.0), None);
        let mean = hs.mean().unwrap();
        assert!(mean > 0.0 && mean.is_finite());
        let empty = HistogramSnapshot {
            name: "e".into(),
            domain: TimeDomain::Sim,
            zero: 0,
            underflow: 0,
            overflow: 0,
            buckets: vec![],
        };
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn shard_merge_matches_direct_observation() {
        let values = [0.0, 1e-20, 0.5, 0.5, 1.0, 3.75, 1e9, f64::INFINITY, -1.0];
        let m_direct = MetricsRegistry::new();
        let h_direct = m_direct.histogram("h", TimeDomain::Wall);
        for &v in &values {
            h_direct.observe(v);
        }
        let m_sharded = MetricsRegistry::new();
        let h_sharded = m_sharded.histogram("h", TimeDomain::Wall);
        let mut a = HistogramShard::new();
        let mut b = HistogramShard::new();
        assert!(a.is_empty());
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        assert_eq!(a.count() + b.count(), values.len() as u64);
        h_sharded.merge_shard(&a);
        h_sharded.merge_shard(&b);
        assert_eq!(m_direct.snapshot(), m_sharded.snapshot());
    }

    #[test]
    fn snapshot_merge_adds_counts_and_overwrites_gauges() {
        let build = |n: u64, g: f64, vs: &[f64]| {
            let m = MetricsRegistry::new();
            m.counter("c", TimeDomain::Sim).add(n);
            m.gauge("g", TimeDomain::Sim).set(g);
            let h = m.histogram("h", TimeDomain::Sim);
            for &v in vs {
                h.observe(v);
            }
            m.snapshot()
        };
        let mut a = build(3, 1.0, &[0.5, 2.0]);
        let b = build(4, 2.0, &[2.0, 1e9]);
        a.merge(&b);
        assert_eq!(a.counter_value("c"), Some(7));
        assert_eq!(a.gauge_value("g"), Some(2.0));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 4);
        // Disjoint metric names are inserted in order.
        let m2 = MetricsRegistry::new();
        m2.counter("a", TimeDomain::Sim).inc();
        a.merge(&m2.snapshot());
        assert_eq!(a.counters[0].name, "a");
        assert_eq!(a.counter_value("a"), Some(1));
    }

    #[test]
    fn json_roundtrips_exactly() {
        let m = MetricsRegistry::new();
        m.counter("engine/supersteps_total", TimeDomain::Sim)
            .add(12);
        m.gauge("engine/imbalance", TimeDomain::Sim).set(1.0625);
        m.gauge("partition/edges_per_sec", TimeDomain::Wall)
            .set(1.25e7);
        let h = m.histogram("engine/superstep_makespan_s", TimeDomain::Sim);
        for &v in &[0.0, 1e-20, 0.125, 0.13, 0.5, 7.0, 1e9] {
            h.observe(v);
        }
        let snap = m.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        // Byte-identity through the vendored parser (satellite: stable
        // float formatting).
        assert_eq!(back.to_json(), json);
        assert!(MetricsSnapshot::from_json("{}").is_err());
    }

    #[test]
    fn prometheus_exposition_golden() {
        let m = MetricsRegistry::new();
        m.counter("engine/supersteps_total", TimeDomain::Sim).add(8);
        m.gauge("engine/imbalance", TimeDomain::Sim).set(1.5);
        let h = m.histogram("engine/superstep makespan_s", TimeDomain::Sim);
        h.observe(0.0);
        h.observe(1.0);
        h.observe(1.0);
        h.observe(1.3);
        h.observe(f64::INFINITY);
        let got = m.snapshot_sim().to_prometheus();
        // Cumulative buckets: base 1 (the zero observation), 1.0 and
        // 1.0 land under le=1.25, 1.3 under le=1.5, +Inf in overflow.
        // _sum: 2·midpoint(1.0,1.25) + 1·midpoint(1.25,1.5) + 1·2^24
        //     = 2.25 + 1.375 + 16777216 = 16777219.625 (exact dyadic).
        let want = "\
# TYPE hetgraph_engine_supersteps_total counter
hetgraph_engine_supersteps_total{domain=\"sim\"} 8
# TYPE hetgraph_engine_imbalance gauge
hetgraph_engine_imbalance{domain=\"sim\"} 1.5
# TYPE hetgraph_engine_superstep_makespan_s histogram
hetgraph_engine_superstep_makespan_s_bucket{domain=\"sim\",le=\"1.25\"} 3
hetgraph_engine_superstep_makespan_s_bucket{domain=\"sim\",le=\"1.5\"} 4
hetgraph_engine_superstep_makespan_s_bucket{domain=\"sim\",le=\"+Inf\"} 5
hetgraph_engine_superstep_makespan_s_sum{domain=\"sim\"} 16777219.625
hetgraph_engine_superstep_makespan_s_count{domain=\"sim\"} 5
";
        assert_eq!(got, want);
    }

    #[test]
    fn sim_snapshot_excludes_wall_metrics() {
        let m = MetricsRegistry::new();
        m.counter("sim_c", TimeDomain::Sim).inc();
        m.counter("wall_c", TimeDomain::Wall).inc();
        m.histogram("wall_h", TimeDomain::Wall).observe(1.0);
        let sim = m.snapshot_sim();
        assert_eq!(sim.counters.len(), 1);
        assert_eq!(sim.counters[0].name, "sim_c");
        assert!(sim.histograms.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Satellite: shard-merge order can never change a snapshot. Any
        // partition of the observations into shards, merged in any
        // order (including shard-into-shard pre-merges), yields the
        // same histogram as serial observation.
        #[test]
        fn shard_merge_order_is_invisible(
            values in proptest::collection::vec(0.0f64..1e8, 1..200),
            split in 1usize..8,
            rotate in 0usize..8,
            pre_merge in any::<bool>(),
        ) {
            let serial = MetricsRegistry::new();
            let hs = serial.histogram("h", TimeDomain::Sim);
            for &v in &values {
                hs.observe(v);
            }

            let mut shards = vec![HistogramShard::new(); split];
            for (i, &v) in values.iter().enumerate() {
                shards[i % split].observe(v);
            }
            shards.rotate_left(rotate % split);
            let sharded = MetricsRegistry::new();
            let hm = sharded.histogram("h", TimeDomain::Sim);
            if pre_merge {
                let mut folded = HistogramShard::new();
                for s in &shards {
                    folded.merge(s);
                }
                hm.merge_shard(&folded);
            } else {
                for s in &shards {
                    hm.merge_shard(s);
                }
            }

            let a = serial.snapshot_sim();
            let b = sharded.snapshot_sim();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.to_json(), b.to_json());
            prop_assert_eq!(a.to_prometheus(), b.to_prometheus());
        }

        // Recorded observation counts are exact regardless of magnitude.
        #[test]
        fn histogram_never_loses_observations(
            values in proptest::collection::vec(-1e12f64..1e12, 0..100),
        ) {
            let m = MetricsRegistry::new();
            let h = m.histogram("h", TimeDomain::Sim);
            for &v in &values {
                h.observe(v);
            }
            let snap = m.snapshot();
            prop_assert_eq!(snap.histogram("h").unwrap().count(), values.len() as u64);
        }
    }
}
