//! Hybrid frontier set for the superstep kernel.
//!
//! The engine's scatter phase inserts activated vertices (possibly many
//! times — set semantics) and the next gather phase needs them back as a
//! sorted, deduplicated `Vec<u32>`. A plain bitmap makes the insert cheap
//! but charges O(n/64) per step for both the clear and the extraction
//! scan, even when almost nothing is active — the dominant cost in the
//! long sparse tail of SSSP/k-core runs.
//!
//! `FrontierSet` keeps the bitmap but tracks the list of *dirty words*
//! (word indices whose value is nonzero). Extraction then picks a
//! representation by occupancy:
//!
//! - **dense** (many dirty words): one linear scan over the word array,
//!   skipping and zeroing only nonzero words — the cache-friendly path
//!   when the frontier is broad;
//! - **sparse** (few dirty words): sort the dirty list and decode only
//!   those words — O(d log d) in dirty words, independent of n.
//!
//! Both paths produce the identical ascending vertex list, so the choice
//! is invisible to the determinism contract (proptested in
//! `tests/proptests.rs`). Clearing happens as a side effect of
//! extraction and touches only words that were actually set, so a step
//! that activates nothing performs no O(n) work (see
//! [`FrontierSet::words_cleared_total`] and the regression test below).

/// Dense extraction wins once at least `1/DENSE_EXTRACT_DIVISOR` of the
/// words are dirty. At 1/8 the full scan reads 8 words per useful one —
/// about the break-even point against sort + random decode on the sparse
/// path (threshold behavior pinned by `threshold_switches_representation`).
const DENSE_EXTRACT_DIVISOR: usize = 8;

/// A clearable bitmap over `0..capacity` with dirty-word tracking and
/// hybrid sparse/dense extraction. Insert-only between extractions.
#[derive(Debug)]
pub struct FrontierSet {
    words: Vec<u64>,
    capacity: usize,
    /// Indices of words currently nonzero; no duplicates (a word is
    /// pushed only on its 0 → nonzero transition).
    dirty: Vec<u32>,
    cleared_words: u64,
}

impl FrontierSet {
    /// An empty frontier over the domain `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        FrontierSet {
            words: vec![0u64; capacity.div_ceil(64)],
            capacity,
            dirty: Vec::new(),
            cleared_words: 0,
        }
    }

    /// Domain size this frontier was built for.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert `i` (idempotent). Panics in debug builds if out of range.
    #[inline]
    pub fn insert(&mut self, i: u32) {
        debug_assert!((i as usize) < self.capacity, "frontier insert out of range");
        let w = (i >> 6) as usize;
        let bit = 1u64 << (i & 63);
        let old = self.words[w];
        if old == 0 {
            self.dirty.push(w as u32);
        }
        self.words[w] = old | bit;
    }

    /// True when nothing has been inserted since the last extraction.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Number of set bits (O(dirty words)).
    pub fn len(&self) -> usize {
        self.dirty
            .iter()
            .map(|&w| self.words[w as usize].count_ones() as usize)
            .sum()
    }

    /// Whether the next [`extract_into`](Self::extract_into) would take
    /// the dense path at the current occupancy.
    pub fn would_extract_dense(&self) -> bool {
        !self.words.is_empty() && self.dirty.len() >= self.words.len() / DENSE_EXTRACT_DIVISOR
    }

    /// Cumulative count of words zeroed by extractions — the kernel's
    /// clear cost. An all-inactive step adds exactly 0.
    pub fn words_cleared_total(&self) -> u64 {
        self.cleared_words
    }

    /// Drain the set into `out` (cleared first) in ascending order,
    /// zeroing every touched word. Picks sparse or dense by occupancy.
    pub fn extract_into(&mut self, out: &mut Vec<u32>) {
        let dense = self.would_extract_dense();
        self.extract_into_forced(out, dense);
    }

    /// [`extract_into`](Self::extract_into) with the representation
    /// choice forced — public so tests can pin both paths to identical
    /// output on either side of the threshold.
    pub fn extract_into_forced(&mut self, out: &mut Vec<u32>, dense: bool) {
        out.clear();
        if self.dirty.is_empty() {
            return;
        }
        self.cleared_words += self.dirty.len() as u64;
        if dense {
            // One pass over the word array; only nonzero words are
            // decoded and written back.
            for w in 0..self.words.len() {
                let mut bits = self.words[w];
                if bits == 0 {
                    continue;
                }
                self.words[w] = 0;
                let base = (w as u32) << 6;
                while bits != 0 {
                    out.push(base + bits.trailing_zeros());
                    bits &= bits - 1;
                }
            }
            self.dirty.clear();
        } else {
            // Decode only the words we know are dirty, in index order.
            self.dirty.sort_unstable();
            for &w in &self.dirty {
                let mut bits = std::mem::take(&mut self.words[w as usize]);
                debug_assert!(bits != 0, "dirty list held a zero word");
                let base = w << 6;
                while bits != 0 {
                    out.push(base + bits.trailing_zeros());
                    bits &= bits - 1;
                }
            }
            self.dirty.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extract(fs: &mut FrontierSet) -> Vec<u32> {
        let mut out = Vec::new();
        fs.extract_into(&mut out);
        out
    }

    #[test]
    fn extraction_is_sorted_and_deduplicated() {
        let mut fs = FrontierSet::new(1000);
        for &v in &[999u32, 3, 64, 3, 0, 511, 64, 999] {
            fs.insert(v);
        }
        assert_eq!(fs.len(), 5);
        assert_eq!(extract(&mut fs), vec![0, 3, 64, 511, 999]);
        assert!(fs.is_empty());
        // The set is fully reusable after extraction.
        fs.insert(7);
        assert_eq!(extract(&mut fs), vec![7]);
    }

    #[test]
    fn sparse_and_dense_paths_agree() {
        let mut a = FrontierSet::new(4096);
        let mut b = FrontierSet::new(4096);
        // Pseudo-random spray via an LCG (keeps the test seed-free).
        let mut x = 12345u64;
        let mut want: Vec<u32> = Vec::new();
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (x >> 33) as u32 % 4096;
            a.insert(v);
            b.insert(v);
            want.push(v);
        }
        want.sort_unstable();
        want.dedup();
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        a.extract_into_forced(&mut oa, false);
        b.extract_into_forced(&mut ob, true);
        assert_eq!(oa, want);
        assert_eq!(ob, want);
    }

    #[test]
    fn threshold_switches_representation() {
        // 4096 bits = 64 words; the divisor-8 threshold flips at 8 dirty
        // words.
        let mut fs = FrontierSet::new(4096);
        for w in 0..7u32 {
            fs.insert(w * 64);
        }
        assert!(!fs.would_extract_dense(), "7/64 dirty words must be sparse");
        fs.insert(7 * 64);
        assert!(fs.would_extract_dense(), "8/64 dirty words must be dense");
    }

    #[test]
    fn all_inactive_step_clears_no_words() {
        // Satellite regression: a step that activates nothing must do no
        // O(n) clearing work.
        let mut fs = FrontierSet::new(1 << 20);
        fs.insert(5);
        fs.insert(100_000);
        let mut out = Vec::new();
        fs.extract_into(&mut out);
        assert_eq!(fs.words_cleared_total(), 2, "only touched words cleared");
        // The empty step: nothing inserted, extraction is free.
        fs.extract_into(&mut out);
        assert!(out.is_empty());
        assert_eq!(
            fs.words_cleared_total(),
            2,
            "empty extraction cleared nothing"
        );
    }

    #[test]
    fn boundary_bits_round_trip() {
        let mut fs = FrontierSet::new(129);
        for v in [0u32, 63, 64, 127, 128] {
            fs.insert(v);
        }
        assert_eq!(extract(&mut fs), vec![0, 63, 64, 127, 128]);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut fs = FrontierSet::new(0);
        assert!(fs.is_empty());
        assert!(!fs.would_extract_dense());
        let mut out = vec![9u32];
        fs.extract_into(&mut out);
        assert!(out.is_empty());
    }
}
