//! The immutable directed graph type.

use crate::{Csr, DegreeStats, Edge, EdgeList, VertexId};

/// An immutable directed graph with the edge list plus both adjacency
/// directions in CSR form.
///
/// Construct through [`crate::GraphBuilder`] (fallible, with cleaning
/// options) or [`Graph::from_edge_list`] (infallible over a validated
/// [`EdgeList`]).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Graph {
    num_vertices: u32,
    edges: Vec<Edge>,
    out_csr: Csr,
    in_csr: Csr,
}

impl Graph {
    /// Build a graph from an [`EdgeList`], constructing both CSR directions.
    pub fn from_edge_list(list: EdgeList) -> Self {
        let num_vertices = list.num_vertices();
        let edges = list.into_edges();
        let out_csr = Csr::from_edges(num_vertices, &edges);
        let in_csr = Csr::from_edges_reversed(num_vertices, &edges);
        Graph {
            num_vertices,
            edges,
            out_csr,
            in_csr,
        }
    }

    /// Number of vertices, including isolated ones.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All edges in insertion order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Out-neighbors of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out_csr.neighbors(v)
    }

    /// In-neighbors of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.in_csr.neighbors(v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_csr.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_csr.degree(v)
    }

    /// Total degree (in + out) of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// The out-direction CSR.
    #[inline]
    pub fn out_csr(&self) -> &Csr {
        &self.out_csr
    }

    /// The in-direction CSR.
    #[inline]
    pub fn in_csr(&self) -> &Csr {
        &self.in_csr
    }

    /// The counts-and-degrees view of this graph that vertex programs
    /// consume (see [`crate::meta::GraphMeta`]). Borrows the CSR offsets;
    /// cheap to construct and copy.
    pub fn meta(&self) -> crate::GraphMeta<'_> {
        crate::GraphMeta::from_offsets(
            self.num_vertices,
            self.edges.len(),
            self.out_csr.offsets(),
            self.in_csr.offsets(),
        )
    }

    /// Resident footprint in bytes of every O(V)+O(E) array this graph
    /// keeps alive: the raw edge list plus both CSR directions. This is
    /// what the compressed [`crate::compact::CompactCsr`] representation
    /// competes against in the scale benchmark's bytes-per-edge ledger.
    pub fn resident_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<Edge>()
            + self.out_csr.resident_bytes()
            + self.in_csr.resident_bytes()
    }

    /// Average out-degree `|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.edges.len() as f64 / self.num_vertices as f64
        }
    }

    /// Iterate over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices
    }

    /// Degree statistics over total degree (used for power-law checks).
    pub fn degree_stats(&self) -> DegreeStats {
        DegreeStats::from_graph(self)
    }

    /// A copy of this graph with every neighbor list sorted ascending
    /// (enables `contains_sorted` membership tests; triangle counting
    /// requires it).
    pub fn with_sorted_adjacency(mut self) -> Self {
        self.out_csr.sort_neighbor_lists();
        self.in_csr.sort_neighbor_lists();
        self
    }

    /// The undirected version of this graph: each edge `{u, v}` appears as
    /// both `(u, v)` and `(v, u)` exactly once; self loops removed.
    ///
    /// Triangle counting and coloring (as in PowerGraph) operate on the
    /// undirected structure.
    pub fn to_undirected(&self) -> Graph {
        let mut sym: Vec<Edge> = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            if e.is_self_loop() {
                continue;
            }
            // Canonical order so dedup collapses (u,v) and (v,u) duplicates.
            let (a, b) = if e.src < e.dst {
                (e.src, e.dst)
            } else {
                (e.dst, e.src)
            };
            sym.push(Edge::new(a, b));
        }
        sym.sort_unstable();
        sym.dedup();
        let mut all = Vec::with_capacity(sym.len() * 2);
        for e in &sym {
            all.push(*e);
            all.push(e.reversed());
        }
        Graph::from_edge_list(EdgeList::from_edges(self.num_vertices, all))
    }

    /// Consistency check used by tests and debug assertions: both CSRs agree
    /// with the edge list.
    pub fn validate(&self) -> bool {
        if self.out_csr.num_edges() != self.edges.len()
            || self.in_csr.num_edges() != self.edges.len()
        {
            return false;
        }
        let out_total: usize = (0..self.num_vertices).map(|v| self.out_degree(v)).sum();
        let in_total: usize = (0..self.num_vertices).map(|v| self.in_degree(v)).sum();
        out_total == self.edges.len() && in_total == self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let el = EdgeList::from_edges(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(1, 3),
                Edge::new(2, 3),
            ],
        );
        Graph::from_edge_list(el)
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.avg_degree(), 1.0);
    }

    #[test]
    fn neighbors_consistent() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        let mut ins = g.in_neighbors(3).to_vec();
        ins.sort_unstable();
        assert_eq!(ins, vec![1, 2]);
    }

    #[test]
    fn validates() {
        assert!(diamond().validate());
    }

    #[test]
    fn undirected_symmetrizes_and_dedups() {
        let el = EdgeList::from_edges(
            3,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 0),
                Edge::new(1, 1),
                Edge::new(1, 2),
            ],
        );
        let u = Graph::from_edge_list(el).to_undirected();
        // {0,1} and {1,2}: 2 undirected edges -> 4 directed arcs.
        assert_eq!(u.num_edges(), 4);
        assert_eq!(u.out_degree(1), 2);
        assert_eq!(u.in_degree(1), 2);
        // Symmetry: every arc has its reverse.
        for e in u.edges() {
            assert!(u.out_neighbors(e.dst).contains(&e.src));
        }
    }

    #[test]
    fn sorted_adjacency_enables_membership() {
        let g = diamond().with_sorted_adjacency();
        assert!(g.out_csr().contains_sorted(0, 2));
        assert!(!g.out_csr().contains_sorted(0, 3));
    }

    #[test]
    fn isolated_vertices_counted() {
        let el = EdgeList::from_edges(10, vec![Edge::new(0, 1)]);
        let g = Graph::from_edge_list(el);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(9), 0);
    }
}
