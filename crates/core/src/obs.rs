//! Structured observability: spans, counters, and gauges with zero cost
//! when disabled.
//!
//! The paper's central claim is that the slowest machine gates every
//! synchronization barrier. Aggregate reports can say *that* a run was
//! imbalanced; only per-machine per-superstep spans can show *which*
//! machine stalled *which* barrier. This module is the substrate for that
//! evidence: an object-safe [`Recorder`] trait that instrumented code
//! writes [`TraceEvent`]s through, a [`NoopRecorder`] that compiles the
//! hot path down to one predictable branch, a [`TraceRecorder`] that
//! collects events in memory, a per-thread [`TraceBuffer`] so fan-out
//! workers record without touching a shared lock per event, and exporters
//! to JSON-lines ([`to_jsonl`]) and the Chrome `trace_event` format
//! ([`chrome_trace`], [`chrome_trace_sim`]) loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! ## Two time domains
//!
//! Every event carries a [`TimeDomain`]:
//!
//! - [`TimeDomain::Sim`] — *simulated cluster time*. Timestamps are
//!   computed from the performance model, not measured, so they are a
//!   pure function of the input and **byte-identical across host thread
//!   counts** (the same determinism contract the engine's `SimReport`
//!   obeys). Sim events must only be emitted from serial code — in
//!   practice, the engine's per-superstep timing section.
//! - [`TimeDomain::Wall`] — *host wall-clock time*, measured against the
//!   recorder's epoch ([`Recorder::now_us`]). Wall events may be emitted
//!   from worker threads (via [`TraceBuffer`]) and are inherently
//!   nondeterministic; they never appear in [`chrome_trace_sim`] output.
//!
//! In the Chrome export the two domains become two processes: `pid 0` is
//! the simulated cluster (one thread lane per machine), `pid 1` is the
//! host.

use std::sync::Mutex;
use std::time::Instant;

/// Which clock an event's timestamps belong to (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum TimeDomain {
    /// Simulated cluster time: deterministic, model-derived.
    Sim,
    /// Host wall-clock time: measured, nondeterministic.
    Wall,
}

/// The shape of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum EventKind {
    /// A duration (`ts_us` .. `ts_us + dur_us`) on a track.
    Span,
    /// A monotonic or per-step quantity sampled at `ts_us`.
    Counter,
    /// An instantaneous level sampled at `ts_us` (rendered like a
    /// counter in the Chrome export).
    Gauge,
}

/// One structured trace event.
///
/// `track` selects the lane within the domain's process: for sim events
/// the engine uses machine index `i` for machine lanes and `P` (one past
/// the last machine) for cluster-wide events like the communication
/// barrier; wall events use worker or phase indices.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TraceEvent {
    /// Event name (Chrome: `name`).
    pub name: String,
    /// Category tag for filtering (Chrome: `cat`).
    pub cat: String,
    /// Span, counter, or gauge.
    pub kind: EventKind,
    /// Sim or wall clock.
    pub domain: TimeDomain,
    /// Lane within the domain's process (Chrome: `tid`).
    pub track: u32,
    /// Start (spans) or sample (counters/gauges) timestamp, microseconds.
    pub ts_us: f64,
    /// Span duration in microseconds; 0 for counters/gauges.
    pub dur_us: f64,
    /// Counter/gauge value; 0 for spans.
    pub value: f64,
}

impl TraceEvent {
    /// A simulated-time span; `start_s`/`dur_s` are in simulated seconds.
    pub fn sim_span(
        name: impl Into<String>,
        cat: impl Into<String>,
        track: u32,
        start_s: f64,
        dur_s: f64,
    ) -> Self {
        TraceEvent {
            name: name.into(),
            cat: cat.into(),
            kind: EventKind::Span,
            domain: TimeDomain::Sim,
            track,
            ts_us: start_s * 1e6,
            dur_us: dur_s * 1e6,
            value: 0.0,
        }
    }

    /// A wall-clock span; `start_us`/`dur_us` come from
    /// [`Recorder::now_us`].
    pub fn wall_span(
        name: impl Into<String>,
        cat: impl Into<String>,
        track: u32,
        start_us: f64,
        dur_us: f64,
    ) -> Self {
        TraceEvent {
            name: name.into(),
            cat: cat.into(),
            kind: EventKind::Span,
            domain: TimeDomain::Wall,
            track,
            ts_us: start_us,
            dur_us,
            value: 0.0,
        }
    }

    /// A counter sample at simulated time `ts_s` (seconds).
    pub fn sim_counter(name: impl Into<String>, track: u32, ts_s: f64, value: f64) -> Self {
        TraceEvent {
            name: name.into(),
            cat: "counter".into(),
            kind: EventKind::Counter,
            domain: TimeDomain::Sim,
            track,
            ts_us: ts_s * 1e6,
            dur_us: 0.0,
            value,
        }
    }

    /// A counter sample at wall-clock time `ts_us`.
    pub fn wall_counter(name: impl Into<String>, track: u32, ts_us: f64, value: f64) -> Self {
        TraceEvent {
            name: name.into(),
            cat: "counter".into(),
            kind: EventKind::Counter,
            domain: TimeDomain::Wall,
            track,
            ts_us,
            dur_us: 0.0,
            value,
        }
    }

    /// A gauge sample at simulated time `ts_s` (seconds).
    pub fn sim_gauge(name: impl Into<String>, track: u32, ts_s: f64, value: f64) -> Self {
        TraceEvent {
            kind: EventKind::Gauge,
            cat: "gauge".into(),
            ..TraceEvent::sim_counter(name, track, ts_s, value)
        }
    }

    /// A gauge sample at wall-clock time `ts_us`.
    pub fn wall_gauge(name: impl Into<String>, track: u32, ts_us: f64, value: f64) -> Self {
        TraceEvent {
            kind: EventKind::Gauge,
            cat: "gauge".into(),
            ..TraceEvent::wall_counter(name, track, ts_us, value)
        }
    }
}

/// Sink for [`TraceEvent`]s.
///
/// Instrumented code takes `&dyn Recorder` and must guard any non-trivial
/// event construction behind [`Recorder::enabled`] — with the
/// [`NoopRecorder`] that guard is the *entire* cost of instrumentation,
/// which is what keeps the engine hot path within the benchmark's
/// overhead budget (`benches/engine.rs`, `engine_obs` group).
pub trait Recorder: Sync {
    /// Whether events are being kept. `false` promises that [`record`]
    /// and [`record_batch`] are no-ops, so callers skip event
    /// construction entirely.
    ///
    /// [`record`]: Recorder::record
    /// [`record_batch`]: Recorder::record_batch
    fn enabled(&self) -> bool;

    /// Record one event. Serial call sites use this directly; fan-out
    /// workers should stage through a [`TraceBuffer`] instead.
    fn record(&self, event: TraceEvent);

    /// Drain `events` into the recorder in one operation (one lock
    /// acquisition for the whole batch). `events` is left empty either
    /// way.
    fn record_batch(&self, events: &mut Vec<TraceEvent>);

    /// Microseconds since the recorder's epoch, for wall-domain
    /// timestamps. Disabled recorders return `0.0`.
    fn now_us(&self) -> f64;
}

/// The disabled recorder: drops everything, reports `enabled() == false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

/// Shared instance of [`NoopRecorder`], the default recorder everywhere a
/// `&dyn Recorder` is threaded through.
pub static NOOP: NoopRecorder = NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _event: TraceEvent) {}
    fn record_batch(&self, events: &mut Vec<TraceEvent>) {
        events.clear();
    }
    fn now_us(&self) -> f64 {
        0.0
    }
}

/// In-memory recorder: collects every event under one mutex, in arrival
/// order. Serial emitters (the engine's timing section) therefore produce
/// a deterministic event order; concurrent wall-domain emitters batch
/// through [`TraceBuffer`] so the lock is taken once per flush, not once
/// per event.
pub struct TraceRecorder {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceRecorder {
    /// A recorder whose wall epoch is "now".
    pub fn new() -> Self {
        TraceRecorder {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Take every recorded event, leaving the recorder empty.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace event lock poisoned"))
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace event lock poisoned").len()
    }

    /// Whether no events have been recorded (or all were taken).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }
    fn record(&self, event: TraceEvent) {
        self.events
            .lock()
            .expect("trace event lock poisoned")
            .push(event);
    }
    fn record_batch(&self, events: &mut Vec<TraceEvent>) {
        self.events
            .lock()
            .expect("trace event lock poisoned")
            .append(events);
    }
    fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }
}

/// Per-thread staging buffer for fan-out workers.
///
/// Pushes are plain `Vec` appends — no atomics, no locks — and the whole
/// batch is handed to the recorder in one [`Recorder::record_batch`] call
/// on [`flush`] (or drop). When the recorder is disabled every push is a
/// no-op, so workers can hold a buffer unconditionally.
///
/// [`flush`]: TraceBuffer::flush
pub struct TraceBuffer<'r> {
    recorder: &'r dyn Recorder,
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl<'r> TraceBuffer<'r> {
    /// A buffer staging into `recorder`.
    pub fn new(recorder: &'r dyn Recorder) -> Self {
        TraceBuffer {
            recorder,
            enabled: recorder.enabled(),
            events: Vec::new(),
        }
    }

    /// Whether the underlying recorder keeps events.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Wall-clock microseconds from the recorder's epoch.
    pub fn now_us(&self) -> f64 {
        self.recorder.now_us()
    }

    /// Stage one event (dropped immediately if the recorder is disabled).
    pub fn push(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Hand all staged events to the recorder (one lock acquisition).
    pub fn flush(&mut self) {
        if !self.events.is_empty() {
            self.recorder.record_batch(&mut self.events);
        }
    }
}

impl Drop for TraceBuffer<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Export events as JSON-lines: one compact JSON object per event, in
/// recording order, with every [`TraceEvent`] field.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("trace event serialization is infallible"));
        out.push('\n');
    }
    out
}

/// Export events in the Chrome `trace_event` format (the JSON Object
/// Format variant): open the file in `chrome://tracing` or drag it into
/// <https://ui.perfetto.dev>. Sim-domain events land in process 0
/// ("simulated cluster"), wall-domain events in process 1 ("host");
/// spans become `ph: "X"` complete events, counters and gauges become
/// `ph: "C"` counter samples.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    chrome_trace_filtered(events, None)
}

/// [`chrome_trace`] restricted to [`TimeDomain::Sim`] events.
///
/// This is the deterministic artifact: sim events are emitted only from
/// serial model code, so for a fixed input the returned string is
/// **byte-identical at any host thread count** (pinned by
/// `tests/threading.rs`). `hetgraph simulate --trace-out x.json` writes
/// exactly this.
pub fn chrome_trace_sim(events: &[TraceEvent]) -> String {
    chrome_trace_filtered(events, Some(TimeDomain::Sim))
}

fn chrome_trace_filtered(events: &[TraceEvent], only: Option<TimeDomain>) -> String {
    let kept: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| only.is_none_or(|d| e.domain == d))
        .collect();
    let mut lines: Vec<String> = Vec::with_capacity(kept.len() + 2);
    // Process-name metadata for each pid that actually appears, pid order.
    for (pid, pname) in [(0u32, "simulated cluster"), (1u32, "host")] {
        if kept.iter().any(|e| chrome_pid(e) == pid) {
            lines.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{pname}\"}}}}"
            ));
        }
    }
    for e in kept {
        lines.push(chrome_event(e));
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]}\n");
    out
}

fn chrome_pid(e: &TraceEvent) -> u32 {
    match e.domain {
        TimeDomain::Sim => 0,
        TimeDomain::Wall => 1,
    }
}

fn chrome_event(e: &TraceEvent) -> String {
    use serde::Value;
    let mut obj: Vec<(String, Value)> = vec![
        ("name".into(), Value::Str(e.name.clone())),
        ("cat".into(), Value::Str(e.cat.clone())),
    ];
    match e.kind {
        EventKind::Span => {
            obj.push(("ph".into(), Value::Str("X".into())));
            obj.push(("pid".into(), Value::UInt(chrome_pid(e) as u64)));
            obj.push(("tid".into(), Value::UInt(e.track as u64)));
            obj.push(("ts".into(), Value::Float(e.ts_us)));
            obj.push(("dur".into(), Value::Float(e.dur_us)));
        }
        EventKind::Counter | EventKind::Gauge => {
            obj.push(("ph".into(), Value::Str("C".into())));
            obj.push(("pid".into(), Value::UInt(chrome_pid(e) as u64)));
            obj.push(("tid".into(), Value::UInt(e.track as u64)));
            obj.push(("ts".into(), Value::Float(e.ts_us)));
            obj.push((
                "args".into(),
                Value::Map(vec![(e.name.clone(), Value::Float(e.value))]),
            ));
        }
    }
    serde_json::to_string(&Value::Map(obj)).expect("chrome event serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_drops_everything() {
        assert!(!NOOP.enabled());
        NOOP.record(TraceEvent::sim_span("x", "test", 0, 0.0, 1.0));
        let mut batch = vec![TraceEvent::sim_counter("c", 0, 0.0, 1.0)];
        NOOP.record_batch(&mut batch);
        assert!(batch.is_empty());
        assert_eq!(NOOP.now_us(), 0.0);
    }

    #[test]
    fn trace_recorder_keeps_arrival_order() {
        let rec = TraceRecorder::new();
        assert!(rec.enabled());
        rec.record(TraceEvent::sim_span("a", "test", 0, 0.0, 1.0));
        rec.record(TraceEvent::sim_span("b", "test", 1, 1.0, 1.0));
        let events = rec.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].name, "b");
        assert!(rec.is_empty(), "take_events drains");
    }

    #[test]
    fn trace_buffer_flushes_on_drop() {
        let rec = TraceRecorder::new();
        {
            let mut buf = TraceBuffer::new(&rec);
            buf.push(TraceEvent::wall_span("w", "test", 3, 10.0, 5.0));
            assert_eq!(rec.len(), 0, "staged, not yet flushed");
        }
        assert_eq!(rec.len(), 1, "drop flushed the batch");
    }

    #[test]
    fn trace_buffer_is_noop_when_disabled() {
        let mut buf = TraceBuffer::new(&NOOP);
        assert!(!buf.enabled());
        buf.push(TraceEvent::wall_span("w", "test", 0, 0.0, 1.0));
        buf.flush(); // must not panic or record anywhere
    }

    #[test]
    fn wall_clock_advances() {
        let rec = TraceRecorder::new();
        let t0 = rec.now_us();
        let t1 = rec.now_us();
        assert!(t1 >= t0);
        assert!(t0 >= 0.0);
    }

    #[test]
    fn sim_units_convert_to_microseconds() {
        let e = TraceEvent::sim_span("gather", "superstep", 2, 1.5, 0.25);
        assert_eq!(e.ts_us, 1.5e6);
        assert_eq!(e.dur_us, 0.25e6);
        assert_eq!(e.domain, TimeDomain::Sim);
        let c = TraceEvent::sim_counter("active", 4, 2.0, 17.0);
        assert_eq!(c.ts_us, 2e6);
        assert_eq!(c.value, 17.0);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let events = vec![
            TraceEvent::sim_span("a", "test", 0, 0.0, 1.0),
            TraceEvent::wall_counter("b", 1, 5.0, 2.0),
        ];
        let jsonl = to_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"a\""));
        assert!(lines[0].contains("\"domain\":\"Sim\""));
        assert!(lines[1].contains("\"kind\":\"Counter\""));
    }

    #[test]
    fn chrome_trace_has_spans_counters_and_metadata() {
        let events = vec![
            TraceEvent::sim_span("gather", "superstep", 0, 0.0, 1.0),
            TraceEvent::sim_gauge("imbalance", 2, 0.0, 1.25),
            TraceEvent::wall_span("fanout", "host", 0, 3.0, 4.0),
        ];
        let json = chrome_trace(&events);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""), "complete spans present");
        assert!(json.contains("\"ph\":\"C\""), "counter samples present");
        assert!(json.contains("simulated cluster"));
        assert!(json.contains("\"host\""));
        assert!(json.contains("\"imbalance\":1.25"));
    }

    #[test]
    fn chrome_trace_sim_excludes_wall_events() {
        let events = vec![
            TraceEvent::sim_span("gather", "superstep", 0, 0.0, 1.0),
            TraceEvent::wall_span("fanout", "host", 0, 3.0, 4.0),
        ];
        let json = chrome_trace_sim(&events);
        assert!(json.contains("gather"));
        assert!(!json.contains("fanout"));
        assert!(!json.contains("\"pid\":1"));
    }

    #[test]
    fn chrome_trace_sim_is_deterministic_for_identical_events() {
        let make = || {
            vec![
                TraceEvent::sim_span("gather", "superstep", 0, 0.0, 0.125),
                TraceEvent::sim_span("barrier_wait", "superstep", 1, 0.125, 0.5),
                TraceEvent::sim_counter("active_vertices", 2, 0.0, 100.0),
            ]
        };
        assert_eq!(chrome_trace_sim(&make()), chrome_trace_sim(&make()));
    }
}
