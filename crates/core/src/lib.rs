//! # hetgraph-core
//!
//! Graph substrate shared by every other `hetgraph` crate.
//!
//! This crate provides the data structures that the rest of the system is
//! built on:
//!
//! - [`Graph`] — an immutable directed graph with both out- and in-adjacency
//!   in CSR (compressed sparse row) form, built through [`GraphBuilder`].
//! - [`EdgeList`] / [`Edge`] — the streaming representation consumed by the
//!   partitioners (PowerGraph-style partitioning assigns *edges*, so the edge
//!   list is the canonical unit of work).
//! - [`rng`] — a deterministic, seedable PRNG family (SplitMix64 and
//!   Xoshiro256**) plus avalanche hash functions. Every stochastic component
//!   in the workspace draws from these so that experiments are exactly
//!   reproducible across platforms, which is a prerequisite for the
//!   paper-reproduction harness.
//! - [`degree`] — degree distributions, histograms, and the tail statistics
//!   used to check that synthetic graphs follow the intended power law.
//! - [`stats`] — small numeric helpers (means, geomeans, percentiles,
//!   relative errors) used by the profiling and evaluation crates.
//! - [`bitset`] — a compact fixed-size bitset used by the engine for active
//!   vertex sets.
//! - [`frontier`] — the engine's hybrid sparse/dense frontier set with
//!   dirty-word clearing, the hot-path replacement for a bare bitset.
//! - [`par`] — deterministic self-scheduling fan-out, shared by the engine's
//!   superstep parallelism and the benchmark sweep's cell parallelism.
//! - [`prefetch`] — portable software-prefetch hints for indirect CSR scans
//!   (currently uncalled by the kernel: measured net-negative on the
//!   benchmark host — see the module docs).
//! - [`obs`] — structured observability: the [`obs::Recorder`] trait,
//!   span/counter/gauge events in simulated and wall time, and exporters
//!   to JSON-lines and Chrome `trace_event` format.
//! - [`metrics`] — aggregated telemetry: a zero-cost-when-disabled
//!   [`metrics::MetricsRegistry`] of counters, gauges, and log-bucketed
//!   mergeable histograms, snapshotted to JSON or Prometheus text. The
//!   aggregation companion to the `obs` event stream, under the same
//!   two-time-domain determinism contract.
//! - [`io`] — text and binary edge-list serialization.
//! - [`compact`] — delta-varint compressed CSR ([`compact::CompactCsr`])
//!   with width-adaptive offsets: the bounded-RSS adjacency representation
//!   for graphs too large for the plain [`Csr`] pair.
//! - [`meta`] — [`meta::GraphMeta`], the counts-and-degrees view vertex
//!   programs consume, backed by either representation.
//! - [`shard`] — fixed-size binary edge shards ([`shard::ShardWriter`] /
//!   [`shard::ShardSet`]): the streaming ingestion format generators emit
//!   with bounded buffering and partitioners replay edge-at-a-time.
//!
//! The substrate deliberately contains no policy: partitioning, machine
//! modeling, and execution live in the downstream crates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitset;
pub mod builder;
pub mod compact;
pub mod csr;
pub mod degree;
pub mod edge_list;
pub mod error;
pub mod frontier;
pub mod graph;
pub mod io;
pub mod meta;
pub mod metrics;
pub mod obs;
pub mod par;
pub mod prefetch;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod transform;

pub use bitset::BitSet;
pub use builder::GraphBuilder;
pub use compact::CompactCsr;
pub use csr::Csr;
pub use degree::DegreeStats;
pub use edge_list::{Edge, EdgeList};
pub use error::CoreError;
pub use frontier::FrontierSet;
pub use graph::Graph;
pub use meta::GraphMeta;
pub use rng::{hash64, SplitMix64, Xoshiro256};
pub use shard::{ShardSet, ShardWriter};

/// Identifier of a vertex. Graphs in this workspace are bounded by `u32`
/// vertex counts (the paper's largest graph has ~4.8 M vertices), which
/// halves the memory footprint of adjacency data relative to `usize`.
pub type VertexId = u32;

/// Identifier of a machine (partition) in a cluster.
///
/// A newtype rather than a bare integer so that machine indices cannot be
/// accidentally mixed with vertex ids in partitioning code.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct MachineId(pub u16);

impl MachineId {
    /// Machine id as a `usize` index into per-machine tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<usize> for MachineId {
    fn from(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize, "machine index overflows u16");
        MachineId(v as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_id_roundtrip() {
        let m = MachineId::from(7usize);
        assert_eq!(m.index(), 7);
        assert_eq!(m.to_string(), "m7");
    }

    #[test]
    fn machine_id_ordering_follows_index() {
        assert!(MachineId(1) < MachineId(2));
        assert_eq!(MachineId(3), MachineId::from(3usize));
    }
}
