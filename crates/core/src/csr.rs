//! Compressed sparse row adjacency.

use crate::{Edge, VertexId};

/// Immutable CSR adjacency structure: for each vertex, a contiguous slice of
/// neighbor ids.
///
/// A `Csr` represents one direction of adjacency (out-edges or in-edges);
/// [`crate::Graph`] holds one of each. Construction is a counting sort over
/// the edge list — O(|V| + |E|) time, no per-vertex allocations.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Csr {
    /// `offsets[v] .. offsets[v + 1]` indexes `targets` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated neighbor lists.
    targets: Vec<VertexId>,
}

impl Csr {
    /// Build out-adjacency from an edge slice: `targets(v)` are all `dst`
    /// with `(v, dst)` in `edges`.
    pub fn from_edges(num_vertices: u32, edges: &[Edge]) -> Self {
        Self::build(num_vertices, edges, |e| (e.src, e.dst))
    }

    /// Build in-adjacency from an edge slice: `targets(v)` are all `src`
    /// with `(src, v)` in `edges`.
    pub fn from_edges_reversed(num_vertices: u32, edges: &[Edge]) -> Self {
        Self::build(num_vertices, edges, |e| (e.dst, e.src))
    }

    fn build(
        num_vertices: u32,
        edges: &[Edge],
        proj: impl Fn(&Edge) -> (VertexId, VertexId),
    ) -> Self {
        let n = num_vertices as usize;
        let mut counts = vec![0usize; n + 1];
        for e in edges {
            let (key, _) = proj(e);
            counts[key as usize + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; edges.len()];
        for e in edges {
            let (key, val) = proj(e);
            targets[cursor[key as usize]] = val;
            cursor[key as usize] += 1;
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of stored adjacency entries (== number of edges).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbor slice of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of vertex `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Iterate `(vertex, neighbors)` pairs in vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> + '_ {
        (0..self.num_vertices()).map(move |v| (v, self.neighbors(v)))
    }

    /// The raw offsets array (length `num_vertices + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Resident footprint in bytes of the offsets and targets arrays
    /// (the compact representation's comparison baseline).
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
    }

    /// The raw concatenated targets array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Sort each vertex's neighbor list ascending (enables binary-search
    /// membership tests, used by triangle counting).
    pub fn sort_neighbor_lists(&mut self) {
        for v in 0..self.num_vertices() as usize {
            let (lo, hi) = (self.offsets[v], self.offsets[v + 1]);
            self.targets[lo..hi].sort_unstable();
        }
    }

    /// Whether `u`'s neighbor list contains `w`. Requires sorted neighbor
    /// lists (see [`Csr::sort_neighbor_lists`]); falls back to a linear scan
    /// for tiny lists, where it is faster than binary search.
    #[inline]
    pub fn contains_sorted(&self, u: VertexId, w: VertexId) -> bool {
        let ns = self.neighbors(u);
        if ns.len() <= 8 {
            ns.contains(&w)
        } else {
            ns.binary_search(&w).is_ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> Vec<Edge> {
        vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(1, 2),
            Edge::new(3, 0),
            Edge::new(3, 2),
        ]
    }

    #[test]
    fn out_adjacency() {
        let csr = Csr::from_edges(4, &edges());
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 5);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[2]);
        assert_eq!(csr.neighbors(2), &[] as &[u32]);
        assert_eq!(csr.neighbors(3), &[0, 2]);
    }

    #[test]
    fn in_adjacency() {
        let csr = Csr::from_edges_reversed(4, &edges());
        assert_eq!(csr.neighbors(2).len(), 3);
        let mut ns = csr.neighbors(2).to_vec();
        ns.sort_unstable();
        assert_eq!(ns, vec![0, 1, 3]);
        assert_eq!(csr.neighbors(0), &[3]);
    }

    #[test]
    fn degrees_match_offsets() {
        let csr = Csr::from_edges(4, &edges());
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(2), 0);
        let total: usize = (0..4).map(|v| csr.degree(v)).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(3, &[]);
        assert_eq!(csr.num_edges(), 0);
        for v in 0..3 {
            assert!(csr.neighbors(v).is_empty());
        }
    }

    #[test]
    fn preserves_duplicate_edges() {
        let es = vec![Edge::new(0, 1), Edge::new(0, 1)];
        let csr = Csr::from_edges(2, &es);
        assert_eq!(csr.neighbors(0), &[1, 1]);
    }

    #[test]
    fn sorted_membership() {
        let mut csr = Csr::from_edges(4, &[Edge::new(0, 3), Edge::new(0, 1), Edge::new(0, 2)]);
        csr.sort_neighbor_lists();
        assert_eq!(csr.neighbors(0), &[1, 2, 3]);
        assert!(csr.contains_sorted(0, 2));
        assert!(!csr.contains_sorted(0, 0));
        assert!(!csr.contains_sorted(1, 0));
    }

    #[test]
    fn iter_covers_all_vertices() {
        let csr = Csr::from_edges(4, &edges());
        let pairs: Vec<_> = csr.iter().collect();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[3].0, 3);
        assert_eq!(pairs[3].1, &[0, 2]);
    }
}
