//! Pareto-frontier extraction over (performance ↑, cost ↓) points.

/// Relation between two (speedup, cost) points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// First point dominates (≥ speedup, ≤ cost, strictly better in one).
    Dominates,
    /// First point is dominated.
    Dominated,
    /// Neither dominates.
    Incomparable,
}

/// Compare `(speedup, cost)` points: higher speedup is better, lower cost
/// is better.
pub fn dominance(a: (f64, f64), b: (f64, f64)) -> Dominance {
    let better_speed = a.0 >= b.0;
    let better_cost = a.1 <= b.1;
    let strictly = a.0 > b.0 || a.1 < b.1;
    if better_speed && better_cost && strictly {
        Dominance::Dominates
    } else if b.0 >= a.0 && b.1 <= a.1 && (b.0 > a.0 || b.1 < a.1) {
        Dominance::Dominated
    } else {
        Dominance::Incomparable
    }
}

/// Indices of the non-dominated points, in input order.
///
/// Duplicated points are all kept (none strictly dominates the other).
pub fn pareto_frontier(points: &[(f64, f64)]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, &b)| j != i && dominance(points[i], b) == Dominance::Dominated)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_cases() {
        assert_eq!(dominance((2.0, 1.0), (1.0, 2.0)), Dominance::Dominates);
        assert_eq!(dominance((1.0, 2.0), (2.0, 1.0)), Dominance::Dominated);
        assert_eq!(dominance((2.0, 2.0), (1.0, 1.0)), Dominance::Incomparable);
        assert_eq!(dominance((1.0, 1.0), (1.0, 1.0)), Dominance::Incomparable);
    }

    #[test]
    fn frontier_drops_dominated() {
        // (speedup, cost): the 3rd point is dominated by the 1st.
        let pts = [(2.0, 1.0), (4.0, 3.0), (1.5, 1.5), (1.0, 0.5)];
        let f = pareto_frontier(&pts);
        assert_eq!(f, vec![0, 1, 3]);
    }

    #[test]
    fn single_point_is_frontier() {
        assert_eq!(pareto_frontier(&[(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn identical_points_all_survive() {
        let pts = [(1.0, 1.0), (1.0, 1.0)];
        assert_eq!(pareto_frontier(&pts), vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn chain_of_tradeoffs_all_survive() {
        // Strictly increasing speedup and cost: everything is Pareto.
        let pts: Vec<(f64, f64)> = (1..6).map(|i| (i as f64, i as f64 * 0.3)).collect();
        assert_eq!(pareto_frontier(&pts).len(), 5);
    }
}
