//! # hetgraph-cost
//!
//! Cost-efficiency projection for cloud machine selection (Section V-C,
//! Fig 11).
//!
//! The paper's third use of proxy profiling: without running a single real
//! workload, the synthetic-graph profile of each candidate machine yields
//! both its expected speedup and — multiplied by the hourly rate — its
//! *cost per task*, exposing which advertised instance types are actually
//! economical for graph workloads.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod pareto;
pub mod study;

pub use pareto::{pareto_frontier, Dominance};
pub use study::{CostPoint, CostStudy};
