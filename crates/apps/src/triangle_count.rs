//! Triangle counting.
//!
//! PowerGraph's implementation keeps each vertex's neighbor list in a hash
//! set and, for every edge `(u, v)`, counts the intersection of `u`'s and
//! `v`'s neighbor sets. We keep *sorted* neighbor arrays (built once in
//! [`TriangleCount::for_graph`]) and count by sorted-merge intersection —
//! same asymptotics, deterministic work accounting: the engine is charged
//! the real number of merge comparisons, so triangle-rich graphs (natural
//! stand-ins) genuinely cost more per edge than clean proxies. That is the
//! mechanism behind the paper's one CCR miss (Triangle Count on the
//! biggest machine).
//!
//! To count each undirected triangle exactly once, run on a DAG
//! orientation (see [`orient_by_degree`]): for every directed edge
//! `v → u`, triangles are closed by common *out*-neighbors of `v` and `u`.
//!
//! Hardware character: compute-bound (the merge does many comparisons per
//! byte touched), with sub-linear-exponent scaling that keeps improving on
//! the largest machines — Fig 2's "sharp speedup increase" application.

use hetgraph_cluster::AppProfile;
use hetgraph_core::{Edge, EdgeList, Graph, GraphMeta, VertexId};
use hetgraph_engine::{CompactDistGraph, Direction, GasProgram};

/// Triangle-count vertex program, bound to one graph's sorted adjacency.
#[derive(Debug, Clone)]
pub struct TriangleCount {
    sorted_out: Vec<Box<[u32]>>,
}

impl TriangleCount {
    /// Build the sorted out-adjacency index for `graph`.
    pub fn for_graph(graph: &Graph) -> Self {
        let sorted_out = (0..graph.num_vertices())
            .map(|v| {
                let mut ns: Vec<u32> = graph.out_neighbors(v).to_vec();
                ns.sort_unstable();
                ns.into_boxed_slice()
            })
            .collect();
        TriangleCount { sorted_out }
    }

    /// [`TriangleCount::for_graph`] for a compressed distributed view.
    /// Compact rows decode in sorted order, so this yields the same
    /// per-vertex index (and therefore bitwise-identical reports) as
    /// building from the plain graph.
    pub fn for_compact(dist: &CompactDistGraph) -> Self {
        let n = dist.meta().num_vertices();
        let mut scratch = Vec::new();
        let sorted_out = (0..n)
            .map(|v| {
                let (ns, _) = dist.out_adj_into(v, &mut scratch);
                ns.to_vec().into_boxed_slice()
            })
            .collect();
        TriangleCount { sorted_out }
    }

    /// The ground-truth hardware profile (see crate docs). Work units are
    /// merge *comparisons*, not edges, so per-unit constants are smaller
    /// than the other applications'.
    pub fn standard_profile() -> AppProfile {
        AppProfile {
            name: "triangle_count".into(),
            edge_flops: 80.0,
            edge_bytes: 10.0,
            vertex_flops: 10.0,
            vertex_bytes: 8.0,
            serial_fraction: 0.0,
            parallel_exponent: 0.7,
            skew_sensitivity: 0.15,
            relief_floor: 0.85,
            relief_ref_degree: 10.0,
        }
    }

    /// Total triangles over the per-vertex counts.
    pub fn total(data: &[u64]) -> u64 {
        data.iter().sum()
    }

    /// Sorted-merge intersection size plus the number of comparisons
    /// performed (the work the hardware actually does).
    fn intersect(a: &[u32], b: &[u32]) -> (u64, f64) {
        let (mut i, mut j) = (0usize, 0usize);
        let mut count = 0u64;
        let mut steps = 0u64;
        while i < a.len() && j < b.len() {
            steps += 1;
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        (count, steps.max(1) as f64)
    }
}

impl GasProgram for TriangleCount {
    type VertexData = u64;
    type Accum = u64;

    fn name(&self) -> &'static str {
        "triangle_count"
    }

    fn profile(&self) -> AppProfile {
        Self::standard_profile()
    }

    fn init(&self, graph: &GraphMeta<'_>, _v: VertexId) -> u64 {
        assert_eq!(
            graph.num_vertices() as usize,
            self.sorted_out.len(),
            "TriangleCount must be constructed for the graph it runs on"
        );
        0
    }

    fn gather_direction(&self) -> Direction {
        Direction::Out
    }

    fn gather(
        &self,
        _graph: &GraphMeta<'_>,
        _data: &[u64],
        v: VertexId,
        u: VertexId,
    ) -> (Option<u64>, f64) {
        let (count, steps) =
            Self::intersect(&self.sorted_out[v as usize], &self.sorted_out[u as usize]);
        (Some(count), steps)
    }

    fn sum(&self, a: u64, b: u64) -> u64 {
        a + b
    }

    fn apply(
        &self,
        _graph: &GraphMeta<'_>,
        _v: VertexId,
        _old: &u64,
        acc: Option<u64>,
        _superstep: usize,
    ) -> (u64, bool) {
        (acc.unwrap_or(0), false)
    }

    fn scatter_direction(&self) -> Direction {
        Direction::None
    }

    fn max_supersteps(&self) -> usize {
        1
    }
}

/// Orient an arbitrary directed graph for exact triangle counting: take
/// the underlying undirected simple graph and direct every edge from the
/// endpoint with smaller (degree, id) to the larger. The result is a DAG
/// on which [`TriangleCount`] counts each undirected triangle exactly
/// once, and hub out-degrees stay bounded (the standard trick).
pub fn orient_by_degree(graph: &Graph) -> Graph {
    let und = graph.to_undirected();
    let rank = |v: VertexId| (und.degree(v), v);
    let mut edges = Vec::with_capacity(und.num_edges() / 2);
    for e in und.edges() {
        // `to_undirected` stores both arcs; keep the canonical one.
        if rank(e.src) < rank(e.dst) {
            edges.push(Edge::new(e.src, e.dst));
        }
    }
    Graph::from_edge_list(EdgeList::from_edges(graph.num_vertices(), edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::triangle_count_ref;
    use hetgraph_cluster::Cluster;
    use hetgraph_core::{Edge, EdgeList};
    use hetgraph_engine::SimEngine;
    use hetgraph_partition::{Ginger, MachineWeights, Partitioner};

    fn count(g: &Graph) -> u64 {
        let oriented = orient_by_degree(g);
        let cluster = Cluster::case2();
        let a = Ginger::new().partition(&oriented, &MachineWeights::uniform(2));
        let tc = TriangleCount::for_graph(&oriented);
        let out = SimEngine::new(&cluster).run(&oriented, &a, &tc);
        TriangleCount::total(&out.data)
    }

    #[test]
    fn single_triangle() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            3,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)],
        ));
        assert_eq!(count(&g), 1);
    }

    #[test]
    fn square_has_no_triangles() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(3, 0),
            ],
        ));
        assert_eq!(count(&g), 0);
    }

    #[test]
    fn complete_graph_count() {
        // K5 has C(5,3) = 10 triangles.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    edges.push(Edge::new(u, v));
                }
            }
        }
        let g = Graph::from_edge_list(EdgeList::from_edges(5, edges));
        assert_eq!(count(&g), 10);
    }

    #[test]
    fn duplicate_and_reverse_edges_do_not_double_count() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            3,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 0),
                Edge::new(1, 2),
                Edge::new(2, 0),
                Edge::new(0, 2),
            ],
        ));
        assert_eq!(count(&g), 1);
    }

    #[test]
    fn matches_reference_on_random_graph() {
        let n = 200u32;
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push(Edge::new(v, (v * 13 + 1) % n));
            edges.push(Edge::new(v, (v * 7 + 3) % n));
            edges.push(Edge::new(v, (v + 1) % n));
        }
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        assert_eq!(count(&g), triangle_count_ref(&g));
    }

    #[test]
    fn work_scales_with_triangle_density() {
        // A clique produces far more merge comparisons per edge than a
        // cycle — the graph-dependent work that drives the paper's TC
        // estimation miss.
        let clique = {
            let mut edges = Vec::new();
            for u in 0..20u32 {
                for v in 0..20u32 {
                    if u != v {
                        edges.push(Edge::new(u, v));
                    }
                }
            }
            Graph::from_edge_list(EdgeList::from_edges(20, edges))
        };
        let cycle = {
            let edges = (0..380u32).map(|v| Edge::new(v, (v + 1) % 380)).collect();
            Graph::from_edge_list(EdgeList::from_edges(380, edges))
        };
        let work = |g: &Graph| {
            let o = orient_by_degree(g);
            let cluster = Cluster::case2();
            let a = Ginger::new().partition(&o, &MachineWeights::uniform(2));
            let tc = TriangleCount::for_graph(&o);
            let rep = SimEngine::new(&cluster).run(&o, &a, &tc).report;
            let total: f64 = rep.per_machine_work.iter().map(|w| w.edge_units).sum();
            total / o.num_edges().max(1) as f64
        };
        assert!(work(&clique) > 2.0 * work(&cycle));
    }

    #[test]
    fn intersect_counts_steps() {
        let (c, s) = TriangleCount::intersect(&[1, 2, 3], &[2, 3, 4]);
        assert_eq!(c, 2);
        assert!(s >= 2.0);
        let (c0, s0) = TriangleCount::intersect(&[], &[1, 2]);
        assert_eq!(c0, 0);
        assert_eq!(s0, 1.0, "empty intersections still cost one probe");
    }

    #[test]
    #[should_panic(expected = "constructed for the graph")]
    fn wrong_graph_rejected() {
        let g1 = Graph::from_edge_list(EdgeList::from_edges(3, vec![Edge::new(0, 1)]));
        let g2 = Graph::from_edge_list(EdgeList::from_edges(5, vec![Edge::new(0, 1)]));
        let tc = TriangleCount::for_graph(&g1);
        let cluster = Cluster::case2();
        let a = Ginger::new().partition(&g2, &MachineWeights::uniform(2));
        SimEngine::new(&cluster).run(&g2, &a, &tc);
    }
}
