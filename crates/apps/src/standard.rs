//! The paper's four applications as a uniform value type.
//!
//! `GasProgram` has associated types, so heterogeneous collections of
//! programs need a dispatch layer. [`StandardApp`] is that layer: the
//! profiler, the evaluation harness, and the cost study all iterate
//! `StandardApp::ALL` and call [`StandardApp::run`], which executes the
//! right vertex program and returns the simulated report.

use hetgraph_cluster::AppProfile;
use hetgraph_core::Graph;
use hetgraph_engine::{DistributedGraph, SimEngine, SimReport};
use hetgraph_partition::PartitionAssignment;

use crate::coloring::Coloring;
use crate::connected_components::ConnectedComponents;
use crate::pagerank::PageRank;
use crate::triangle_count::TriangleCount;

/// Default PageRank iteration count for evaluation runs (the paper runs
/// PageRank for a fixed number of sweeps).
pub const PAGERANK_ITERATIONS: usize = 10;

/// The four MLDM applications of Section IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum StandardApp {
    /// PageRank (Eq. 8), fixed iterations.
    PageRank,
    /// Greedy coloring.
    Coloring,
    /// Weakly-connected components.
    ConnectedComponents,
    /// Triangle counting.
    TriangleCount,
}

impl StandardApp {
    /// All four, in the paper's order.
    pub const ALL: [StandardApp; 4] = [
        StandardApp::PageRank,
        StandardApp::Coloring,
        StandardApp::ConnectedComponents,
        StandardApp::TriangleCount,
    ];

    /// Application name (keys the CCR pool).
    pub fn name(self) -> &'static str {
        match self {
            StandardApp::PageRank => "pagerank",
            StandardApp::Coloring => "coloring",
            StandardApp::ConnectedComponents => "connected_components",
            StandardApp::TriangleCount => "triangle_count",
        }
    }

    /// The application's ground-truth hardware profile.
    pub fn profile(self) -> AppProfile {
        match self {
            StandardApp::PageRank => PageRank::standard_profile(),
            StandardApp::Coloring => Coloring::standard_profile(),
            StandardApp::ConnectedComponents => ConnectedComponents::standard_profile(),
            StandardApp::TriangleCount => TriangleCount::standard_profile(),
        }
    }

    /// Execute on a partitioned graph and return the simulated report.
    pub fn run(
        self,
        engine: &SimEngine<'_>,
        graph: &Graph,
        assignment: &PartitionAssignment,
    ) -> SimReport {
        self.run_with_threads(engine, graph, assignment, 1)
    }

    /// [`StandardApp::run`] with an engine-level host thread budget:
    /// `host_threads == 1` uses the serial engine, anything larger
    /// dispatches to [`SimEngine::run_parallel`]. Results are identical
    /// for vertex data and within floating-point re-association for the
    /// simulated times.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    pub fn run_with_threads(
        self,
        engine: &SimEngine<'_>,
        graph: &Graph,
        assignment: &PartitionAssignment,
        host_threads: usize,
    ) -> SimReport {
        let dist = DistributedGraph::new(graph, assignment);
        self.run_on_with_threads(engine, &dist, host_threads)
    }

    /// [`StandardApp::run_with_threads`] over a prebuilt
    /// [`DistributedGraph`], so sweeps that execute several apps against
    /// one cached partition build the O(edges) distributed view once.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    pub fn run_on_with_threads(
        self,
        engine: &SimEngine<'_>,
        dist: &DistributedGraph<'_>,
        host_threads: usize,
    ) -> SimReport {
        assert!(host_threads > 0, "need at least one host thread");
        match self {
            StandardApp::PageRank => {
                let pr = PageRank::new(PAGERANK_ITERATIONS);
                if host_threads == 1 {
                    engine.run_on(dist, &pr).report
                } else {
                    engine.run_parallel_on(dist, &pr, host_threads).report
                }
            }
            StandardApp::Coloring => {
                let c = Coloring::new();
                if host_threads == 1 {
                    engine.run_on(dist, &c).report
                } else {
                    engine.run_parallel_on(dist, &c, host_threads).report
                }
            }
            StandardApp::ConnectedComponents => {
                let cc = ConnectedComponents::new();
                if host_threads == 1 {
                    engine.run_on(dist, &cc).report
                } else {
                    engine.run_parallel_on(dist, &cc, host_threads).report
                }
            }
            StandardApp::TriangleCount => {
                let tc = TriangleCount::for_graph(dist.graph());
                if host_threads == 1 {
                    engine.run_on(dist, &tc).report
                } else {
                    engine.run_parallel_on(dist, &tc, host_threads).report
                }
            }
        }
    }
}

impl std::fmt::Display for StandardApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The paper's application set.
pub fn standard_apps() -> [StandardApp; 4] {
    StandardApp::ALL
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_cluster::Cluster;
    use hetgraph_gen::PowerLawConfig;
    use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};

    #[test]
    fn names_and_profiles_consistent() {
        for app in StandardApp::ALL {
            assert_eq!(app.name(), app.profile().name);
            app.profile().assert_valid();
        }
    }

    #[test]
    fn all_four_run_on_a_power_law_graph() {
        let g = PowerLawConfig::new(800, 2.1).generate(3);
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        for app in standard_apps() {
            let rep = app.run(&engine, &g, &a);
            assert!(rep.makespan_s > 0.0, "{app}: no time simulated");
            assert!(rep.supersteps > 0, "{app}: no supersteps");
            assert_eq!(rep.app, app.name());
        }
    }

    #[test]
    fn profiles_are_microarchitecturally_diverse() {
        // The Fig 2 premise: the four apps must not share one profile.
        let ratios: Vec<f64> = StandardApp::ALL
            .iter()
            .map(|a| {
                let p = a.profile();
                p.edge_flops / p.edge_bytes
            })
            .collect();
        // PageRank is the most memory-bound; TriangleCount the least.
        assert!(ratios[0] < ratios[1]);
        assert!(ratios[0] < ratios[2]);
        assert!(ratios[3] > ratios[1]);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(StandardApp::PageRank.to_string(), "pagerank");
    }

    #[test]
    fn threaded_dispatch_matches_serial_run() {
        let g = PowerLawConfig::new(800, 2.1).generate(3);
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        for app in standard_apps() {
            let serial = app.run(&engine, &g, &a);
            for threads in [1, 2, 4] {
                let par = app.run_with_threads(&engine, &g, &a, threads);
                assert_eq!(par.supersteps, serial.supersteps, "{app}/{threads}");
                assert!(
                    (par.makespan_s - serial.makespan_s).abs()
                        < 1e-9 * serial.makespan_s.max(1.0),
                    "{app}/{threads}: {} vs {}",
                    par.makespan_s,
                    serial.makespan_s
                );
            }
        }
    }
}
