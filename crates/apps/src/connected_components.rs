//! Connected Components by label propagation.
//!
//! Every vertex starts with its own id as label; each superstep it adopts
//! the minimum label among itself and its (in + out) neighbors. At
//! convergence all vertices in one weakly-connected component share the
//! component's minimum vertex id — and the engine's final data is exactly
//! the component labeling the paper's application reports (components plus
//! their sizes follow by aggregation).
//!
//! Hardware character: balanced compute/memory; scales near-linearly with
//! threads in Fig 2 (its profile carries the largest serial fraction of
//! the linear-scaling apps, from the convergence check on the hot path).

use hetgraph_cluster::AppProfile;
use hetgraph_core::{GraphMeta, VertexId};
use hetgraph_engine::{Direction, GasProgram};

/// Connected-components vertex program (weak connectivity).
#[derive(Debug, Clone, Default)]
pub struct ConnectedComponents {}

impl ConnectedComponents {
    /// Default construction.
    pub fn new() -> Self {
        ConnectedComponents {}
    }

    /// The ground-truth hardware profile (see crate docs).
    pub fn standard_profile() -> AppProfile {
        AppProfile {
            name: "connected_components".into(),
            edge_flops: 80.0,
            edge_bytes: 48.0,
            vertex_flops: 20.0,
            vertex_bytes: 12.0,
            serial_fraction: 0.06,
            parallel_exponent: 0.93,
            skew_sensitivity: 0.3,
            relief_floor: 0.85,
            relief_ref_degree: 10.0,
        }
    }

    /// Aggregate a labeling into (label → component size) counts, sorted
    /// by size descending — the "number of vertices in each connected
    /// component" output of the paper's description.
    pub fn component_sizes(labels: &[u32]) -> Vec<(u32, usize)> {
        let mut counts = std::collections::HashMap::new();
        for &l in labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        let mut out: Vec<(u32, usize)> = counts.into_iter().collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

impl GasProgram for ConnectedComponents {
    type VertexData = u32;
    type Accum = u32;

    fn name(&self) -> &'static str {
        "connected_components"
    }

    fn profile(&self) -> AppProfile {
        Self::standard_profile()
    }

    fn init(&self, _graph: &GraphMeta<'_>, v: VertexId) -> u32 {
        v
    }

    fn gather_direction(&self) -> Direction {
        Direction::Both
    }

    fn gather(
        &self,
        _graph: &GraphMeta<'_>,
        data: &[u32],
        _v: VertexId,
        u: VertexId,
    ) -> (Option<u32>, f64) {
        (Some(data[u as usize]), 1.0)
    }

    fn sum(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(
        &self,
        _graph: &GraphMeta<'_>,
        _v: VertexId,
        old: &u32,
        acc: Option<u32>,
        _superstep: usize,
    ) -> (u32, bool) {
        let new = acc.map_or(*old, |a| a.min(*old));
        (new, new < *old)
    }

    fn scatter_direction(&self) -> Direction {
        Direction::Both
    }

    fn max_supersteps(&self) -> usize {
        // Label propagation needs at most the graph diameter steps; cap
        // generously (paths are the worst realistic case in tests).
        100_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::connected_components_ref;
    use hetgraph_cluster::Cluster;
    use hetgraph_core::{Edge, EdgeList, Graph};
    use hetgraph_engine::SimEngine;
    use hetgraph_partition::{Hybrid, MachineWeights, Partitioner};

    fn run(g: &Graph) -> Vec<u32> {
        let cluster = Cluster::case2();
        let a = Hybrid::new().partition(g, &MachineWeights::uniform(2));
        let out = SimEngine::new(&cluster).run(g, &a, &ConnectedComponents::new());
        assert!(out.report.converged, "CC must converge");
        out.data
    }

    #[test]
    fn two_components() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            6,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(3, 4),
                Edge::new(4, 5),
            ],
        ));
        let labels = run(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn direction_is_ignored_for_weak_connectivity() {
        // Edges all pointing "backwards" still connect.
        let g = Graph::from_edge_list(EdgeList::from_edges(
            3,
            vec![Edge::new(2, 1), Edge::new(1, 0)],
        ));
        assert_eq!(run(&g), vec![0, 0, 0]);
    }

    #[test]
    fn matches_reference_on_random_graph() {
        let mut edges = Vec::new();
        let n = 300u32;
        for v in 0..n {
            if v % 7 != 0 {
                edges.push(Edge::new(v, (v + 3) % n));
            }
        }
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        assert_eq!(run(&g), connected_components_ref(&g));
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let g = Graph::from_edge_list(EdgeList::from_edges(4, vec![Edge::new(0, 1)]));
        let labels = run(&g);
        assert_eq!(labels[2], 2);
        assert_eq!(labels[3], 3);
    }

    #[test]
    fn component_sizes_aggregation() {
        let sizes = ConnectedComponents::component_sizes(&[0, 0, 0, 3, 3, 7]);
        assert_eq!(sizes, vec![(0, 3), (3, 2), (7, 1)]);
    }

    #[test]
    fn long_path_converges() {
        let n = 500u32;
        let edges = (0..n - 1).map(|v| Edge::new(v, v + 1)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let labels = run(&g);
        assert!(labels.iter().all(|&l| l == 0));
    }
}
