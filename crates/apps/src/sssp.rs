//! Single-source shortest paths (extension beyond the paper's four apps).
//!
//! Unit-weight SSSP by frontier relaxation: the source starts active;
//! every changed vertex scatters to its out-neighbors, which pull the
//! minimum `dist + 1` over in-neighbors. Unlike the always-active
//! applications, SSSP's active set is a moving frontier — a useful stress
//! case for the engine's activation bookkeeping and for ablations on
//! bursty per-superstep load.

use hetgraph_cluster::AppProfile;
use hetgraph_core::{GraphMeta, VertexId};
use hetgraph_engine::{ActiveInit, Direction, GasProgram};

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// SSSP vertex program.
#[derive(Debug, Clone)]
pub struct Sssp {
    source: VertexId,
}

impl Sssp {
    /// Shortest paths from `source`.
    pub fn new(source: VertexId) -> Self {
        Sssp { source }
    }

    /// The source vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Ground-truth hardware profile: light per-edge compute, frontier
    /// bursts, and a bit of serial overhead from frontier management.
    pub fn standard_profile() -> AppProfile {
        AppProfile {
            name: "sssp".into(),
            edge_flops: 40.0,
            edge_bytes: 36.0,
            vertex_flops: 15.0,
            vertex_bytes: 8.0,
            serial_fraction: 0.05,
            parallel_exponent: 1.0,
            skew_sensitivity: 0.3,
            relief_floor: 0.85,
            relief_ref_degree: 10.0,
        }
    }
}

impl GasProgram for Sssp {
    type VertexData = u32;
    type Accum = u32;

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn profile(&self) -> AppProfile {
        Self::standard_profile()
    }

    fn init(&self, _graph: &GraphMeta<'_>, v: VertexId) -> u32 {
        if v == self.source {
            0
        } else {
            UNREACHABLE
        }
    }

    fn gather_direction(&self) -> Direction {
        Direction::In
    }

    fn gather(
        &self,
        _graph: &GraphMeta<'_>,
        data: &[u32],
        _v: VertexId,
        u: VertexId,
    ) -> (Option<u32>, f64) {
        let d = data[u as usize];
        if d == UNREACHABLE {
            (None, 1.0)
        } else {
            (Some(d + 1), 1.0)
        }
    }

    fn sum(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(
        &self,
        _graph: &GraphMeta<'_>,
        v: VertexId,
        old: &u32,
        acc: Option<u32>,
        superstep: usize,
    ) -> (u32, bool) {
        let new = acc.map_or(*old, |a| a.min(*old));
        // The source must fire its first scatter even though its distance
        // does not change in superstep 0.
        let kick_off = superstep == 0 && v == self.source;
        (new, new < *old || kick_off)
    }

    fn scatter_direction(&self) -> Direction {
        Direction::Out
    }

    fn initial_active(&self, _graph: &GraphMeta<'_>) -> ActiveInit {
        ActiveInit::Seeds(vec![self.source])
    }

    fn max_supersteps(&self) -> usize {
        1_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sssp_ref;
    use hetgraph_cluster::Cluster;
    use hetgraph_core::{Edge, EdgeList, Graph};
    use hetgraph_engine::SimEngine;
    use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};

    fn run(g: &Graph, source: VertexId) -> Vec<u32> {
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(g, &MachineWeights::uniform(2));
        let out = SimEngine::new(&cluster).run(g, &a, &Sssp::new(source));
        assert!(out.report.converged);
        out.data
    }

    #[test]
    fn path_distances() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)],
        ));
        assert_eq!(run(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_stays_max() {
        let g = Graph::from_edge_list(EdgeList::from_edges(3, vec![Edge::new(0, 1)]));
        let d = run(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn respects_direction() {
        let g = Graph::from_edge_list(EdgeList::from_edges(2, vec![Edge::new(1, 0)]));
        // No path 0 -> 1 along directed edges.
        assert_eq!(run(&g, 0)[1], UNREACHABLE);
    }

    #[test]
    fn shorter_path_wins() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 3),
                Edge::new(0, 3), // direct shortcut
                Edge::new(0, 2),
                Edge::new(2, 3),
            ],
        ));
        assert_eq!(run(&g, 0)[3], 1);
    }

    #[test]
    fn matches_reference_bfs() {
        let n = 300u32;
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push(Edge::new(v, (v * 11 + 2) % n));
            edges.push(Edge::new(v, (v * 5 + 9) % n));
        }
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        assert_eq!(run(&g, 7), sssp_ref(&g, 7));
    }
}
