//! Greedy graph coloring with priority-based conflict repair.
//!
//! PowerGraph's Coloring application colors a directed graph so no two
//! connected vertices share a color, and reports the number of colors
//! used. The synchronous emulation here is the classic priority scheme:
//! every vertex starts at color 0; each superstep a vertex re-colors
//! itself (to the smallest color unused by any neighbor) only if it
//! conflicts with a *higher-priority* (lower-id) neighbor. Higher-priority
//! vertices hold their color, so every conflict strictly resolves and the
//! process terminates with a proper coloring.
//!
//! Hardware character: the paper notes Coloring benefits least from
//! CCR-guided partitioning because of its "asynchronous execution manner";
//! its profile carries a moderate serial fraction to reflect the conflict
//! serialization that async engines suffer.

use hetgraph_cluster::AppProfile;
use hetgraph_core::{Graph, GraphMeta, VertexId};
use hetgraph_engine::{Direction, GasProgram};

/// Greedy coloring vertex program.
#[derive(Debug, Clone, Default)]
pub struct Coloring {}

impl Coloring {
    /// Default construction.
    pub fn new() -> Self {
        Coloring {}
    }

    /// The ground-truth hardware profile (see crate docs).
    pub fn standard_profile() -> AppProfile {
        AppProfile {
            name: "coloring".into(),
            edge_flops: 50.0,
            edge_bytes: 32.0,
            vertex_flops: 40.0,
            vertex_bytes: 16.0,
            serial_fraction: 0.04,
            parallel_exponent: 0.93,
            skew_sensitivity: 0.3,
            relief_floor: 0.85,
            relief_ref_degree: 10.0,
        }
    }

    /// Number of distinct colors in a final coloring — the application's
    /// reported output ("count the total number of colors in use").
    pub fn color_count(colors: &[u32]) -> usize {
        let mut set: Vec<u32> = colors.to_vec();
        set.sort_unstable();
        set.dedup();
        set.len()
    }

    /// Verify a proper coloring: no edge (ignoring self loops) connects
    /// two vertices of the same color.
    pub fn is_proper(graph: &Graph, colors: &[u32]) -> bool {
        graph
            .edges()
            .iter()
            .filter(|e| !e.is_self_loop())
            .all(|e| colors[e.src as usize] != colors[e.dst as usize])
    }
}

impl GasProgram for Coloring {
    type VertexData = u32;
    /// `(neighbor id, neighbor color)` pairs observed by gather.
    type Accum = Vec<(u32, u32)>;

    fn name(&self) -> &'static str {
        "coloring"
    }

    fn profile(&self) -> AppProfile {
        Self::standard_profile()
    }

    fn init(&self, _graph: &GraphMeta<'_>, _v: VertexId) -> u32 {
        0
    }

    fn gather_direction(&self) -> Direction {
        Direction::Both
    }

    fn gather(
        &self,
        _graph: &GraphMeta<'_>,
        data: &[u32],
        _v: VertexId,
        u: VertexId,
    ) -> (Option<Vec<(u32, u32)>>, f64) {
        (Some(vec![(u, data[u as usize])]), 1.0)
    }

    fn sum(&self, mut a: Vec<(u32, u32)>, mut b: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        a.append(&mut b);
        a
    }

    fn apply(
        &self,
        _graph: &GraphMeta<'_>,
        v: VertexId,
        old: &u32,
        acc: Option<Vec<(u32, u32)>>,
        _superstep: usize,
    ) -> (u32, bool) {
        let neighbors = match acc {
            Some(ns) => ns,
            None => return (*old, false),
        };
        // Repair only if a higher-priority (lower id) neighbor holds our
        // color; self loops never conflict.
        let conflicted = neighbors.iter().any(|&(u, c)| u != v && c == *old && u < v);
        if !conflicted {
            return (*old, false);
        }
        // Smallest color unused by ANY neighbor.
        let mut used: Vec<u32> = neighbors
            .iter()
            .filter(|&&(u, _)| u != v)
            .map(|&(_, c)| c)
            .collect();
        used.sort_unstable();
        used.dedup();
        let mut candidate = 0u32;
        for c in used {
            if c == candidate {
                candidate += 1;
            } else if c > candidate {
                break;
            }
        }
        (candidate, candidate != *old)
    }

    fn scatter_direction(&self) -> Direction {
        Direction::Both
    }

    fn max_supersteps(&self) -> usize {
        10_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_cluster::Cluster;
    use hetgraph_core::{Edge, EdgeList};
    use hetgraph_engine::SimEngine;
    use hetgraph_partition::{MachineWeights, Oblivious, Partitioner};

    fn run(g: &Graph) -> Vec<u32> {
        let cluster = Cluster::case2();
        let a = Oblivious::new().partition(g, &MachineWeights::uniform(2));
        let out = SimEngine::new(&cluster).run(g, &a, &Coloring::new());
        assert!(out.report.converged, "coloring must converge");
        out.data
    }

    #[test]
    fn path_uses_two_colors() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)],
        ));
        let colors = run(&g);
        assert!(Coloring::is_proper(&g, &colors));
        assert_eq!(Coloring::color_count(&colors), 2);
    }

    #[test]
    fn triangle_needs_three_colors() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            3,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)],
        ));
        let colors = run(&g);
        assert!(Coloring::is_proper(&g, &colors));
        assert_eq!(Coloring::color_count(&colors), 3);
    }

    #[test]
    fn star_uses_two_colors() {
        let n = 30u32;
        let edges = (1..n).map(|v| Edge::new(0, v)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let colors = run(&g);
        assert!(Coloring::is_proper(&g, &colors));
        assert_eq!(Coloring::color_count(&colors), 2);
    }

    #[test]
    fn random_graph_proper() {
        let n = 400u32;
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push(Edge::new(v, (v * 17 + 5) % n));
            edges.push(Edge::new(v, (v * 29 + 11) % n));
        }
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let colors = run(&g);
        assert!(Coloring::is_proper(&g, &colors));
        // Greedy with priority stays close to degeneracy-order quality.
        assert!(Coloring::color_count(&colors) <= 10);
    }

    #[test]
    fn self_loops_do_not_deadlock() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            2,
            vec![Edge::new(0, 0), Edge::new(0, 1)],
        ));
        let colors = run(&g);
        assert!(Coloring::is_proper(&g, &colors));
    }

    #[test]
    fn color_count_counts_distinct() {
        assert_eq!(Coloring::color_count(&[0, 1, 0, 2]), 3);
        assert_eq!(Coloring::color_count(&[]), 0);
    }
}
