//! Sequential reference implementations.
//!
//! Straight-line, obviously-correct versions of every application, used by
//! unit and integration tests to validate the GAS engine end-to-end: the
//! distributed execution must produce byte-identical results regardless of
//! cluster shape or partitioner.

use std::collections::VecDeque;

use hetgraph_core::{Graph, VertexId};

/// Jacobi PageRank, `iterations` steps with damping `d`.
pub fn pagerank_ref(graph: &Graph, iterations: usize, d: f64) -> Vec<f64> {
    let n = graph.num_vertices().max(1) as f64;
    let mut ranks = vec![1.0 / n; graph.num_vertices() as usize];
    for _ in 0..iterations {
        let mut next = vec![(1.0 - d) / n; ranks.len()];
        for v in graph.vertices() {
            let mut acc = 0.0;
            for &u in graph.in_neighbors(v) {
                acc += ranks[u as usize] / graph.out_degree(u) as f64;
            }
            next[v as usize] += d * acc;
        }
        ranks = next;
    }
    ranks
}

/// Weakly-connected components: label = minimum vertex id in the component.
pub fn connected_components_ref(graph: &Graph) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let mut labels: Vec<u32> = vec![u32::MAX; n];
    for start in graph.vertices() {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        // BFS over the undirected view; `start` is the smallest unvisited
        // id, hence the component minimum.
        let mut queue = VecDeque::from([start]);
        labels[start as usize] = start;
        while let Some(v) = queue.pop_front() {
            for &u in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = start;
                    queue.push_back(u);
                }
            }
        }
    }
    labels
}

/// Exact triangle count of the *underlying undirected simple graph*,
/// via the same degree orientation the distributed app uses.
pub fn triangle_count_ref(graph: &Graph) -> u64 {
    let oriented = crate::triangle_count::orient_by_degree(graph);
    let sorted: Vec<Vec<u32>> = (0..oriented.num_vertices())
        .map(|v| {
            let mut ns = oriented.out_neighbors(v).to_vec();
            ns.sort_unstable();
            ns
        })
        .collect();
    let mut total = 0u64;
    for e in oriented.edges() {
        let (a, b) = (&sorted[e.src as usize], &sorted[e.dst as usize]);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Equal => {
                    total += 1;
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
    }
    total
}

/// Unit-weight SSSP (BFS) over out-edges from `source`.
pub fn sssp_ref(graph: &Graph, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        for &u in graph.out_neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = dist[v as usize] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// k-core membership by repeated global peeling. Neighbor counts use edge
/// multiplicity over in + out edges, matching the distributed program.
pub fn kcore_ref(graph: &Graph, k: u32) -> Vec<bool> {
    let n = graph.num_vertices() as usize;
    let mut alive = vec![true; n];
    loop {
        let mut removed_any = false;
        let snapshot = alive.clone();
        for v in graph.vertices() {
            if !snapshot[v as usize] {
                continue;
            }
            let count: u32 = graph
                .in_neighbors(v)
                .iter()
                .chain(graph.out_neighbors(v))
                .map(|&u| snapshot[u as usize] as u32)
                .sum();
            if count < k {
                alive[v as usize] = false;
                removed_any = true;
            }
        }
        if !removed_any {
            return alive;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::{Edge, EdgeList};

    fn triangle() -> Graph {
        Graph::from_edge_list(EdgeList::from_edges(
            3,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)],
        ))
    }

    #[test]
    fn pagerank_ref_sums_near_one_without_danglers() {
        let g = triangle();
        let r = pagerank_ref(&g, 50, 0.85);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cc_ref_basic() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![Edge::new(0, 1), Edge::new(2, 3)],
        ));
        assert_eq!(connected_components_ref(&g), vec![0, 0, 2, 2]);
    }

    #[test]
    fn tc_ref_triangle() {
        assert_eq!(triangle_count_ref(&triangle()), 1);
    }

    #[test]
    fn sssp_ref_bfs() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            3,
            vec![Edge::new(0, 1), Edge::new(1, 2)],
        ));
        assert_eq!(sssp_ref(&g, 0), vec![0, 1, 2]);
        assert_eq!(sssp_ref(&g, 2), vec![u32::MAX, u32::MAX, 0]);
    }

    #[test]
    fn kcore_ref_triangle_is_2core() {
        let alive = kcore_ref(&triangle(), 2);
        assert!(alive.iter().all(|&a| a));
        let gone = kcore_ref(&triangle(), 3);
        assert!(gone.iter().all(|&a| !a));
    }
}
