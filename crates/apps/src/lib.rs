//! # hetgraph-apps
//!
//! The paper's four MLDM applications as GAS vertex programs (Section IV),
//! plus two extensions, plus sequential reference implementations used to
//! validate the engine end-to-end.
//!
//! | App | Module | Character (ground-truth profile) |
//! |---|---|---|
//! | PageRank | [`pagerank`] | memory-bound, saturates on big machines |
//! | Coloring | [`coloring`] | balanced, async-flavoured convergence |
//! | Connected Components | [`connected_components`] | balanced, near-linear scaling |
//! | Triangle Count | [`triangle_count`] | compute-bound, sharp top-end scaling |
//! | SSSP (extension) | [`sssp`] | frontier-driven, bursty supersteps |
//! | k-core (extension) | [`kcore`] | peeling, shrinking active set |
//!
//! The per-application hardware profiles (flops/bytes per work unit,
//! serial fraction, parallel exponent) are **calibrated ground truth** for
//! the simulated testbed: they reproduce the paper's Fig 2 scaling shapes.
//! They are invisible to scheduling policies — the proxy-profiling flow
//! only ever observes simulated *times*.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coloring;
pub mod connected_components;
pub mod kcore;
pub mod pagerank;
pub mod reference;
pub mod registry;
pub mod sssp;
pub mod triangle_count;

pub use coloring::Coloring;
pub use connected_components::ConnectedComponents;
pub use kcore::KCore;
pub use pagerank::{PageRank, PageRank32};
pub use registry::{
    full_apps, standard_apps, AnyApp, AppRegistry, AppSpec, KCORE_DEFAULT_K, PAGERANK_ITERATIONS,
    SSSP_DEFAULT_SOURCE,
};
pub use sssp::Sssp;
pub use triangle_count::TriangleCount;
