//! PageRank (paper Eq. 8).
//!
//! `PR(u) = (1 − d)/N + d · Σ_{v ∈ B_u} PR(v) / L(v)` with damping
//! `d = 0.85`. Gather runs over in-edges (pull), apply mixes in the
//! damping term, scatter re-activates out-neighbors while the rank still
//! moves more than the tolerance.
//!
//! Hardware character (Fig 2): PageRank is the memory-bound application —
//! per-edge compute is trivial (one multiply-add) but every gather touches
//! a random remote cache line. Its profile therefore carries the highest
//! `edge_bytes`, making it the first to saturate on machines with many
//! threads but finite bandwidth.

use hetgraph_cluster::AppProfile;
use hetgraph_core::{Graph, VertexId};
use hetgraph_engine::{Direction, GasProgram};

/// Damping factor used by the paper (standard 0.85).
pub const DAMPING: f64 = 0.85;

/// PageRank vertex program.
#[derive(Debug, Clone)]
pub struct PageRank {
    iterations: usize,
    tolerance: f64,
}

impl PageRank {
    /// Run exactly `iterations` supersteps (tolerance 0 keeps every vertex
    /// active while ranks move at all — the paper-style fixed-iteration
    /// configuration).
    pub fn new(iterations: usize) -> Self {
        assert!(iterations > 0, "PageRank needs at least one iteration");
        PageRank {
            iterations,
            tolerance: 0.0,
        }
    }

    /// Converge to `tolerance` (L∞ on rank deltas), up to `max_iterations`.
    pub fn with_tolerance(max_iterations: usize, tolerance: f64) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        assert!(max_iterations > 0, "PageRank needs at least one iteration");
        PageRank {
            iterations: max_iterations,
            tolerance,
        }
    }

    /// The ground-truth hardware profile (see crate docs).
    pub fn standard_profile() -> AppProfile {
        AppProfile {
            name: "pagerank".into(),
            edge_flops: 60.0,
            edge_bytes: 100.0,
            vertex_flops: 30.0,
            vertex_bytes: 16.0,
            serial_fraction: 0.02,
            parallel_exponent: 0.93,
            skew_sensitivity: 0.3,
            relief_floor: 0.85,
            relief_ref_degree: 10.0,
        }
    }
}

impl GasProgram for PageRank {
    type VertexData = f64;
    type Accum = f64;

    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn profile(&self) -> AppProfile {
        Self::standard_profile()
    }

    fn init(&self, graph: &Graph, _v: VertexId) -> f64 {
        1.0 / graph.num_vertices().max(1) as f64
    }

    fn gather_direction(&self) -> Direction {
        Direction::In
    }

    fn gather(&self, graph: &Graph, data: &[f64], _v: VertexId, u: VertexId) -> (Option<f64>, f64) {
        // u is an in-neighbor, so it has at least the edge (u, v): its
        // out-degree is never zero here.
        (Some(data[u as usize] / graph.out_degree(u) as f64), 1.0)
    }

    fn sum(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn apply(
        &self,
        graph: &Graph,
        _v: VertexId,
        old: &f64,
        acc: Option<f64>,
        _superstep: usize,
    ) -> (f64, bool) {
        let n = graph.num_vertices().max(1) as f64;
        let new = (1.0 - DAMPING) / n + DAMPING * acc.unwrap_or(0.0);
        ((new), (new - old).abs() > self.tolerance)
    }

    fn scatter_direction(&self) -> Direction {
        Direction::Out
    }

    fn max_supersteps(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::pagerank_ref;
    use hetgraph_cluster::Cluster;
    use hetgraph_core::{Edge, EdgeList};
    use hetgraph_engine::SimEngine;
    use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};

    fn run(g: &Graph, iters: usize) -> Vec<f64> {
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(g, &MachineWeights::uniform(2));
        SimEngine::new(&cluster)
            .run(g, &a, &PageRank::new(iters))
            .data
    }

    #[test]
    fn ring_is_uniform() {
        // Every vertex of a directed ring has identical rank 1/N.
        let n = 10u32;
        let edges = (0..n).map(|v| Edge::new(v, (v + 1) % n)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let ranks = run(&g, 30);
        for r in &ranks {
            assert!((r - 0.1).abs() < 1e-9, "rank {r}");
        }
    }

    #[test]
    fn matches_sequential_reference() {
        let mut edges = Vec::new();
        let n = 50u32;
        for v in 0..n {
            edges.push(Edge::new(v, (v * 7 + 1) % n));
            edges.push(Edge::new(v, (v * 3 + 2) % n));
        }
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let got = run(&g, 25);
        let want = pagerank_ref(&g, 25, DAMPING);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn hub_collects_rank() {
        // star: all leaves point at vertex 0 -> hub rank dominates.
        let n = 20u32;
        let edges = (1..n).map(|v| Edge::new(v, 0)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let ranks = run(&g, 20);
        assert!(ranks[0] > ranks[1] * 5.0);
    }

    #[test]
    fn tolerance_converges_early() {
        let n = 10u32;
        let edges = (0..n).map(|v| Edge::new(v, (v + 1) % n)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let out = SimEngine::new(&cluster).run(&g, &a, &PageRank::with_tolerance(500, 1e-12));
        assert!(out.report.converged);
        assert!(out.report.supersteps < 500);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        PageRank::new(0);
    }
}
