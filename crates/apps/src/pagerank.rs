//! PageRank (paper Eq. 8).
//!
//! `PR(u) = (1 − d)/N + d · Σ_{v ∈ B_u} PR(v) / L(v)` with damping
//! `d = 0.85`. Gather runs over in-edges (pull), apply mixes in the
//! damping term, scatter re-activates out-neighbors while the rank still
//! moves more than the tolerance.
//!
//! Hardware character (Fig 2): PageRank is the memory-bound application —
//! per-edge compute is trivial (one multiply-add) but every gather touches
//! a random remote cache line. Its profile therefore carries the highest
//! `edge_bytes`, making it the first to saturate on machines with many
//! threads but finite bandwidth.

use hetgraph_cluster::AppProfile;
use hetgraph_core::{GraphMeta, VertexId};
use hetgraph_engine::{Direction, GasProgram};

/// Damping factor used by the paper (standard 0.85).
pub const DAMPING: f64 = 0.85;

/// PageRank vertex program.
#[derive(Debug, Clone)]
pub struct PageRank {
    iterations: usize,
    tolerance: f64,
}

impl PageRank {
    /// Run exactly `iterations` supersteps (tolerance 0 keeps every vertex
    /// active while ranks move at all — the paper-style fixed-iteration
    /// configuration).
    pub fn new(iterations: usize) -> Self {
        assert!(iterations > 0, "PageRank needs at least one iteration");
        PageRank {
            iterations,
            tolerance: 0.0,
        }
    }

    /// Converge to `tolerance` (L∞ on rank deltas), up to `max_iterations`.
    pub fn with_tolerance(max_iterations: usize, tolerance: f64) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        assert!(max_iterations > 0, "PageRank needs at least one iteration");
        PageRank {
            iterations: max_iterations,
            tolerance,
        }
    }

    /// The ground-truth hardware profile (see crate docs).
    pub fn standard_profile() -> AppProfile {
        AppProfile {
            name: "pagerank".into(),
            edge_flops: 60.0,
            edge_bytes: 100.0,
            vertex_flops: 30.0,
            vertex_bytes: 16.0,
            serial_fraction: 0.02,
            parallel_exponent: 0.93,
            skew_sensitivity: 0.3,
            relief_floor: 0.85,
            relief_ref_degree: 10.0,
        }
    }
}

impl GasProgram for PageRank {
    type VertexData = f64;
    type Accum = f64;

    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn profile(&self) -> AppProfile {
        Self::standard_profile()
    }

    fn init(&self, graph: &GraphMeta<'_>, _v: VertexId) -> f64 {
        1.0 / graph.num_vertices().max(1) as f64
    }

    fn gather_direction(&self) -> Direction {
        Direction::In
    }

    fn gather(
        &self,
        graph: &GraphMeta<'_>,
        data: &[f64],
        _v: VertexId,
        u: VertexId,
    ) -> (Option<f64>, f64) {
        // u is an in-neighbor, so it has at least the edge (u, v): its
        // out-degree is never zero here. (Under `gather_by_source` the
        // kernel also evaluates sources with out-degree 0; the resulting
        // `inf` entries are never read — see the trait contract.)
        (Some(data[u as usize] / graph.out_degree(u) as f64), 1.0)
    }

    /// The contribution `data[u] / out_degree(u)` depends only on `u`, so
    /// the kernel may evaluate it once per source per superstep instead of
    /// paying the division on every edge.
    fn gather_by_source(&self) -> bool {
        true
    }

    fn source_gather(&self, graph: &GraphMeta<'_>, data: &[f64], u: VertexId) -> f64 {
        data[u as usize] / graph.out_degree(u) as f64
    }

    fn sum(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn apply(
        &self,
        graph: &GraphMeta<'_>,
        _v: VertexId,
        old: &f64,
        acc: Option<f64>,
        _superstep: usize,
    ) -> (f64, bool) {
        let n = graph.num_vertices().max(1) as f64;
        let new = (1.0 - DAMPING) / n + DAMPING * acc.unwrap_or(0.0);
        ((new), (new - old).abs() > self.tolerance)
    }

    fn scatter_direction(&self) -> Direction {
        Direction::Out
    }

    fn max_supersteps(&self) -> usize {
        self.iterations
    }
}

/// PageRank with `f32` vertex data and accumulators — the engine's
/// opt-in reduced-precision mode.
///
/// Halving the rank array halves the kernel's dominant random-access
/// traffic (the `data[u]` pull in gather), which is worth real throughput
/// on memory-bound graphs. The price is ~7 decimal digits of rank
/// precision, so this program is **off by default**: it is not in
/// [`crate::AppRegistry::standard`] or [`crate::AppRegistry::full`] (its
/// reports would not be comparable with the pinned f64 snapshots), and is
/// reached only by explicit opt-in — `--app pagerank_f32` on the CLI, or
/// [`crate::AnyApp::pagerank_f32`] in code.
#[derive(Debug, Clone)]
pub struct PageRank32 {
    iterations: usize,
    tolerance: f32,
}

impl PageRank32 {
    /// Run exactly `iterations` supersteps (see [`PageRank::new`]).
    pub fn new(iterations: usize) -> Self {
        assert!(iterations > 0, "PageRank needs at least one iteration");
        PageRank32 {
            iterations,
            tolerance: 0.0,
        }
    }

    /// The f32 profile: identical calibrated constants under the name
    /// `pagerank_f32`, so its simulated times are directly comparable
    /// with the f64 program's.
    pub fn standard_profile() -> AppProfile {
        AppProfile {
            name: "pagerank_f32".into(),
            ..PageRank::standard_profile()
        }
    }
}

impl GasProgram for PageRank32 {
    type VertexData = f32;
    type Accum = f32;

    fn name(&self) -> &'static str {
        "pagerank_f32"
    }

    fn profile(&self) -> AppProfile {
        Self::standard_profile()
    }

    fn init(&self, graph: &GraphMeta<'_>, _v: VertexId) -> f32 {
        1.0 / graph.num_vertices().max(1) as f32
    }

    fn gather_direction(&self) -> Direction {
        Direction::In
    }

    fn gather(
        &self,
        graph: &GraphMeta<'_>,
        data: &[f32],
        _v: VertexId,
        u: VertexId,
    ) -> (Option<f32>, f64) {
        (Some(data[u as usize] / graph.out_degree(u) as f32), 1.0)
    }

    /// Source-only, like [`PageRank::gather_by_source`].
    fn gather_by_source(&self) -> bool {
        true
    }

    fn source_gather(&self, graph: &GraphMeta<'_>, data: &[f32], u: VertexId) -> f32 {
        data[u as usize] / graph.out_degree(u) as f32
    }

    fn sum(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn apply(
        &self,
        graph: &GraphMeta<'_>,
        _v: VertexId,
        old: &f32,
        acc: Option<f32>,
        _superstep: usize,
    ) -> (f32, bool) {
        let n = graph.num_vertices().max(1) as f32;
        let new = (1.0 - DAMPING as f32) / n + DAMPING as f32 * acc.unwrap_or(0.0);
        (new, (new - old).abs() > self.tolerance)
    }

    fn scatter_direction(&self) -> Direction {
        Direction::Out
    }

    fn max_supersteps(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::pagerank_ref;
    use hetgraph_cluster::Cluster;
    use hetgraph_core::{Edge, EdgeList, Graph};
    use hetgraph_engine::SimEngine;
    use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};

    fn run(g: &Graph, iters: usize) -> Vec<f64> {
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(g, &MachineWeights::uniform(2));
        SimEngine::new(&cluster)
            .run(g, &a, &PageRank::new(iters))
            .data
    }

    #[test]
    fn ring_is_uniform() {
        // Every vertex of a directed ring has identical rank 1/N.
        let n = 10u32;
        let edges = (0..n).map(|v| Edge::new(v, (v + 1) % n)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let ranks = run(&g, 30);
        for r in &ranks {
            assert!((r - 0.1).abs() < 1e-9, "rank {r}");
        }
    }

    #[test]
    fn matches_sequential_reference() {
        let mut edges = Vec::new();
        let n = 50u32;
        for v in 0..n {
            edges.push(Edge::new(v, (v * 7 + 1) % n));
            edges.push(Edge::new(v, (v * 3 + 2) % n));
        }
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let got = run(&g, 25);
        let want = pagerank_ref(&g, 25, DAMPING);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn hub_collects_rank() {
        // star: all leaves point at vertex 0 -> hub rank dominates.
        let n = 20u32;
        let edges = (1..n).map(|v| Edge::new(v, 0)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let ranks = run(&g, 20);
        assert!(ranks[0] > ranks[1] * 5.0);
    }

    #[test]
    fn tolerance_converges_early() {
        let n = 10u32;
        let edges = (0..n).map(|v| Edge::new(v, (v + 1) % n)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let out = SimEngine::new(&cluster).run(&g, &a, &PageRank::with_tolerance(500, 1e-12));
        assert!(out.report.converged);
        assert!(out.report.supersteps < 500);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        PageRank::new(0);
    }

    #[test]
    fn f32_tracks_f64_ranks_within_single_precision() {
        let mut edges = Vec::new();
        let n = 50u32;
        for v in 0..n {
            edges.push(Edge::new(v, (v * 7 + 1) % n));
            edges.push(Edge::new(v, (v * 3 + 2) % n));
        }
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        let f64_out = engine.run(&g, &a, &PageRank::new(25));
        let f32_out = engine.run(&g, &a, &PageRank32::new(25));
        for (a64, a32) in f64_out.data.iter().zip(&f32_out.data) {
            assert!(
                (a64 - *a32 as f64).abs() < 1e-5,
                "f32 rank {a32} drifted from f64 rank {a64}"
            );
        }
        // Single-precision deltas can round to exactly zero near the
        // stationary point, so the f32 run may retire vertices earlier —
        // but never later — than the f64 run.
        assert!(f32_out.report.supersteps <= f64_out.report.supersteps);
        assert_eq!(f32_out.report.app, "pagerank_f32");
    }
}
