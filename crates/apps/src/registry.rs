//! The app registry: every workload as one uniform, extensible value type.
//!
//! `GasProgram` has associated types, so heterogeneous collections of
//! programs need a dispatch layer. [`AnyApp`] is that layer: an
//! object-safe, type-erased handle over a vertex program (via the
//! [`AppSpec`] trait) with a stable name key for the CCR pool. The
//! profiler, the evaluation harness, the CLI, and `Framework` all iterate
//! [`AnyApp`] collections and call [`AnyApp::run`], which executes the
//! right vertex program on the one superstep kernel and returns the
//! simulated report.
//!
//! **Registering a new app is a one-place change**: implement
//! [`GasProgram`] for your vertex program, add an [`AppSpec`] (usually a
//! few lines — see `SsspSpec` in this file) and a constructor on
//! [`AnyApp`], and list it in [`AppRegistry::full`]. Every consumer —
//! `CcrPool::profile*`, the sweep matrix's `--apps` selector, `hetgraph
//! run`/`submit`, and `Framework` — picks it up from there; no enum to
//! extend, no per-crate match arms.

use std::sync::Arc;

use hetgraph_cluster::AppProfile;
use hetgraph_core::{Graph, VertexId};
use hetgraph_engine::{
    CompactDistGraph, DistributedGraph, GasProgram, RebalancePolicy, SimEngine, SimReport,
};
use hetgraph_partition::PartitionAssignment;

use crate::coloring::Coloring;
use crate::connected_components::ConnectedComponents;
use crate::kcore::KCore;
use crate::pagerank::{PageRank, PageRank32};
use crate::sssp::Sssp;
use crate::triangle_count::TriangleCount;

/// Default PageRank iteration count for evaluation runs (the paper runs
/// PageRank for a fixed number of sweeps).
pub const PAGERANK_ITERATIONS: usize = 10;

/// Default SSSP source vertex for evaluation runs.
pub const SSSP_DEFAULT_SOURCE: VertexId = 0;

/// Default k for k-core evaluation runs.
pub const KCORE_DEFAULT_K: u32 = 3;

/// One registered workload: what the registry needs to profile and run it.
///
/// Object-safe on purpose — `AnyApp` stores `Arc<dyn AppSpec>`, so a spec
/// must type-erase its program's associated types behind
/// [`AppSpec::run_on_with_threads`]. Programs that depend on the input
/// graph (Triangle Count pre-sorts adjacency) construct themselves inside
/// that call.
pub trait AppSpec: Send + Sync {
    /// Application name. Keys the CCR pool and the `--apps`/CLI selectors,
    /// so it must be stable and unique within a registry.
    fn name(&self) -> &'static str;

    /// The application's ground-truth hardware profile.
    fn profile(&self) -> AppProfile;

    /// Execute on a prebuilt [`DistributedGraph`] with the given host
    /// thread budget and return the simulated report.
    fn run_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &DistributedGraph<'_>,
        host_threads: usize,
    ) -> SimReport;

    /// Execute with mid-run rebalancing: `policy` may migrate edges
    /// between supersteps, mutating the view's copy-on-write placement
    /// (the caller's `PartitionAssignment` is never touched).
    fn run_rebalanced_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &mut DistributedGraph<'_>,
        host_threads: usize,
        policy: &mut dyn RebalancePolicy,
    ) -> SimReport;

    /// Execute on a prebuilt compressed [`CompactDistGraph`]. Reports are
    /// bitwise identical to [`AppSpec::run_on_with_threads`] over the
    /// equivalent plain view.
    fn run_compact_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &CompactDistGraph,
        host_threads: usize,
    ) -> SimReport;
}

/// Run a concrete program on the unified kernel — the one line every
/// [`AppSpec`] implementation ends with.
fn exec<P: GasProgram>(
    engine: &SimEngine<'_>,
    dist: &DistributedGraph<'_>,
    program: &P,
    host_threads: usize,
) -> SimReport {
    engine
        .run_on_with_threads(dist, program, host_threads)
        .report
}

/// [`exec`] for the rebalanced entry point.
fn exec_rebalanced<P: GasProgram>(
    engine: &SimEngine<'_>,
    dist: &mut DistributedGraph<'_>,
    program: &P,
    host_threads: usize,
    policy: &mut dyn RebalancePolicy,
) -> SimReport {
    engine
        .run_rebalanced_on_with_threads(dist, program, host_threads, policy)
        .report
}

/// [`exec`] for the compressed-representation entry point.
fn exec_compact<P: GasProgram>(
    engine: &SimEngine<'_>,
    dist: &CompactDistGraph,
    program: &P,
    host_threads: usize,
) -> SimReport {
    engine
        .run_compact_on_with_threads(dist, program, host_threads)
        .report
}

/// A cheaply-cloneable, type-erased handle to a registered workload.
///
/// Equality, hashing, ordering, and `Display` all go through
/// [`AnyApp::name`], matching how the CCR pool and the scheduling policies
/// key applications.
#[derive(Clone)]
pub struct AnyApp(Arc<dyn AppSpec>);

impl AnyApp {
    /// Wrap a spec.
    pub fn new(spec: impl AppSpec + 'static) -> Self {
        AnyApp(Arc::new(spec))
    }

    /// PageRank (Eq. 8) at the standard [`PAGERANK_ITERATIONS`].
    pub fn pagerank() -> Self {
        AnyApp::new(PageRankSpec)
    }

    /// Reduced-precision PageRank ([`PageRank32`]) at the standard
    /// [`PAGERANK_ITERATIONS`]. Opt-in only: deliberately not part of
    /// [`AppRegistry::standard`] or [`AppRegistry::full`] — its f32 ranks
    /// are not comparable with the pinned f64 snapshots, so it must be
    /// registered explicitly (the CLI does, as `pagerank_f32`).
    pub fn pagerank_f32() -> Self {
        AnyApp::new(PageRank32Spec)
    }

    /// Greedy coloring.
    pub fn coloring() -> Self {
        AnyApp::new(ColoringSpec)
    }

    /// Weakly-connected components.
    pub fn connected_components() -> Self {
        AnyApp::new(ConnectedComponentsSpec)
    }

    /// Triangle counting.
    pub fn triangle_count() -> Self {
        AnyApp::new(TriangleCountSpec)
    }

    /// Single-source shortest paths from `source`.
    pub fn sssp(source: VertexId) -> Self {
        AnyApp::new(SsspSpec { source })
    }

    /// k-core decomposition at threshold `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn kcore(k: u32) -> Self {
        assert!(k > 0, "k-core requires k >= 1");
        AnyApp::new(KCoreSpec { k })
    }

    /// Application name (keys the CCR pool).
    pub fn name(&self) -> &'static str {
        self.0.name()
    }

    /// The application's ground-truth hardware profile.
    pub fn profile(&self) -> AppProfile {
        self.0.profile()
    }

    /// Execute on a partitioned graph and return the simulated report.
    pub fn run(
        &self,
        engine: &SimEngine<'_>,
        graph: &Graph,
        assignment: &PartitionAssignment,
    ) -> SimReport {
        self.run_with_threads(engine, graph, assignment, 1)
    }

    /// [`AnyApp::run`] with an engine-level host thread budget. The
    /// kernel's results — vertex effects *and* the floating-point report —
    /// are bitwise identical at any thread count.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    pub fn run_with_threads(
        &self,
        engine: &SimEngine<'_>,
        graph: &Graph,
        assignment: &PartitionAssignment,
        host_threads: usize,
    ) -> SimReport {
        let dist =
            DistributedGraph::new(graph, assignment).expect("assignment must cover the graph");
        self.run_on_with_threads(engine, &dist, host_threads)
    }

    /// [`AnyApp::run_with_threads`] over a prebuilt [`DistributedGraph`],
    /// so sweeps that execute several apps against one cached partition
    /// build the O(edges) distributed view once.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    pub fn run_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &DistributedGraph<'_>,
        host_threads: usize,
    ) -> SimReport {
        assert!(host_threads > 0, "need at least one host thread");
        self.0.run_on_with_threads(engine, dist, host_threads)
    }

    /// [`AnyApp::run_with_threads`] with mid-run rebalancing: `policy`
    /// observes each superstep's straggler signals and may migrate edges
    /// between supersteps. The caller's `assignment` is never mutated —
    /// the distributed view copies it on the first real migration.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    pub fn run_rebalanced_with_threads(
        &self,
        engine: &SimEngine<'_>,
        graph: &Graph,
        assignment: &PartitionAssignment,
        host_threads: usize,
        policy: &mut dyn RebalancePolicy,
    ) -> SimReport {
        let mut dist =
            DistributedGraph::new(graph, assignment).expect("assignment must cover the graph");
        self.run_rebalanced_on_with_threads(engine, &mut dist, host_threads, policy)
    }

    /// [`AnyApp::run_rebalanced_with_threads`] over a prebuilt (mutable)
    /// [`DistributedGraph`]; after the run `dist` holds the final
    /// placement for inspection.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    pub fn run_rebalanced_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &mut DistributedGraph<'_>,
        host_threads: usize,
        policy: &mut dyn RebalancePolicy,
    ) -> SimReport {
        assert!(host_threads > 0, "need at least one host thread");
        self.0
            .run_rebalanced_on_with_threads(engine, dist, host_threads, policy)
    }

    /// [`AnyApp::run_on_with_threads`] over a prebuilt compressed
    /// [`CompactDistGraph`] — the bounded-RSS path, where no plain
    /// `Graph` or `DistributedGraph` needs to exist. The report is
    /// bitwise identical to the plain path's at any thread count.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    pub fn run_compact_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &CompactDistGraph,
        host_threads: usize,
    ) -> SimReport {
        assert!(host_threads > 0, "need at least one host thread");
        self.0
            .run_compact_on_with_threads(engine, dist, host_threads)
    }
}

impl PartialEq for AnyApp {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}
impl Eq for AnyApp {}

impl std::hash::Hash for AnyApp {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name().hash(state);
    }
}

impl std::fmt::Debug for AnyApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AnyApp").field(&self.name()).finish()
    }
}

impl std::fmt::Display for AnyApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

struct PageRankSpec;
impl AppSpec for PageRankSpec {
    fn name(&self) -> &'static str {
        "pagerank"
    }
    fn profile(&self) -> AppProfile {
        PageRank::standard_profile()
    }
    fn run_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &DistributedGraph<'_>,
        host_threads: usize,
    ) -> SimReport {
        exec(
            engine,
            dist,
            &PageRank::new(PAGERANK_ITERATIONS),
            host_threads,
        )
    }
    fn run_rebalanced_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &mut DistributedGraph<'_>,
        host_threads: usize,
        policy: &mut dyn RebalancePolicy,
    ) -> SimReport {
        exec_rebalanced(
            engine,
            dist,
            &PageRank::new(PAGERANK_ITERATIONS),
            host_threads,
            policy,
        )
    }
    fn run_compact_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &CompactDistGraph,
        host_threads: usize,
    ) -> SimReport {
        exec_compact(
            engine,
            dist,
            &PageRank::new(PAGERANK_ITERATIONS),
            host_threads,
        )
    }
}

struct PageRank32Spec;
impl AppSpec for PageRank32Spec {
    fn name(&self) -> &'static str {
        "pagerank_f32"
    }
    fn profile(&self) -> AppProfile {
        PageRank32::standard_profile()
    }
    fn run_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &DistributedGraph<'_>,
        host_threads: usize,
    ) -> SimReport {
        exec(
            engine,
            dist,
            &PageRank32::new(PAGERANK_ITERATIONS),
            host_threads,
        )
    }
    fn run_rebalanced_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &mut DistributedGraph<'_>,
        host_threads: usize,
        policy: &mut dyn RebalancePolicy,
    ) -> SimReport {
        exec_rebalanced(
            engine,
            dist,
            &PageRank32::new(PAGERANK_ITERATIONS),
            host_threads,
            policy,
        )
    }
    fn run_compact_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &CompactDistGraph,
        host_threads: usize,
    ) -> SimReport {
        exec_compact(
            engine,
            dist,
            &PageRank32::new(PAGERANK_ITERATIONS),
            host_threads,
        )
    }
}

struct ColoringSpec;
impl AppSpec for ColoringSpec {
    fn name(&self) -> &'static str {
        "coloring"
    }
    fn profile(&self) -> AppProfile {
        Coloring::standard_profile()
    }
    fn run_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &DistributedGraph<'_>,
        host_threads: usize,
    ) -> SimReport {
        exec(engine, dist, &Coloring::new(), host_threads)
    }
    fn run_rebalanced_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &mut DistributedGraph<'_>,
        host_threads: usize,
        policy: &mut dyn RebalancePolicy,
    ) -> SimReport {
        exec_rebalanced(engine, dist, &Coloring::new(), host_threads, policy)
    }
    fn run_compact_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &CompactDistGraph,
        host_threads: usize,
    ) -> SimReport {
        exec_compact(engine, dist, &Coloring::new(), host_threads)
    }
}

struct ConnectedComponentsSpec;
impl AppSpec for ConnectedComponentsSpec {
    fn name(&self) -> &'static str {
        "connected_components"
    }
    fn profile(&self) -> AppProfile {
        ConnectedComponents::standard_profile()
    }
    fn run_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &DistributedGraph<'_>,
        host_threads: usize,
    ) -> SimReport {
        exec(engine, dist, &ConnectedComponents::new(), host_threads)
    }
    fn run_rebalanced_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &mut DistributedGraph<'_>,
        host_threads: usize,
        policy: &mut dyn RebalancePolicy,
    ) -> SimReport {
        exec_rebalanced(
            engine,
            dist,
            &ConnectedComponents::new(),
            host_threads,
            policy,
        )
    }
    fn run_compact_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &CompactDistGraph,
        host_threads: usize,
    ) -> SimReport {
        exec_compact(engine, dist, &ConnectedComponents::new(), host_threads)
    }
}

struct TriangleCountSpec;
impl AppSpec for TriangleCountSpec {
    fn name(&self) -> &'static str {
        "triangle_count"
    }
    fn profile(&self) -> AppProfile {
        TriangleCount::standard_profile()
    }
    fn run_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &DistributedGraph<'_>,
        host_threads: usize,
    ) -> SimReport {
        exec(
            engine,
            dist,
            &TriangleCount::for_graph(dist.graph()),
            host_threads,
        )
    }
    fn run_rebalanced_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &mut DistributedGraph<'_>,
        host_threads: usize,
        policy: &mut dyn RebalancePolicy,
    ) -> SimReport {
        exec_rebalanced(
            engine,
            dist,
            &TriangleCount::for_graph(dist.graph()),
            host_threads,
            policy,
        )
    }
    fn run_compact_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &CompactDistGraph,
        host_threads: usize,
    ) -> SimReport {
        exec_compact(
            engine,
            dist,
            &TriangleCount::for_compact(dist),
            host_threads,
        )
    }
}

struct SsspSpec {
    source: VertexId,
}
impl AppSpec for SsspSpec {
    fn name(&self) -> &'static str {
        "sssp"
    }
    fn profile(&self) -> AppProfile {
        Sssp::standard_profile()
    }
    fn run_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &DistributedGraph<'_>,
        host_threads: usize,
    ) -> SimReport {
        exec(engine, dist, &Sssp::new(self.source), host_threads)
    }
    fn run_rebalanced_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &mut DistributedGraph<'_>,
        host_threads: usize,
        policy: &mut dyn RebalancePolicy,
    ) -> SimReport {
        exec_rebalanced(engine, dist, &Sssp::new(self.source), host_threads, policy)
    }
    fn run_compact_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &CompactDistGraph,
        host_threads: usize,
    ) -> SimReport {
        exec_compact(engine, dist, &Sssp::new(self.source), host_threads)
    }
}

struct KCoreSpec {
    k: u32,
}
impl AppSpec for KCoreSpec {
    fn name(&self) -> &'static str {
        "kcore"
    }
    fn profile(&self) -> AppProfile {
        KCore::standard_profile()
    }
    fn run_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &DistributedGraph<'_>,
        host_threads: usize,
    ) -> SimReport {
        exec(engine, dist, &KCore::new(self.k), host_threads)
    }
    fn run_rebalanced_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &mut DistributedGraph<'_>,
        host_threads: usize,
        policy: &mut dyn RebalancePolicy,
    ) -> SimReport {
        exec_rebalanced(engine, dist, &KCore::new(self.k), host_threads, policy)
    }
    fn run_compact_on_with_threads(
        &self,
        engine: &SimEngine<'_>,
        dist: &CompactDistGraph,
        host_threads: usize,
    ) -> SimReport {
        exec_compact(engine, dist, &KCore::new(self.k), host_threads)
    }
}

/// An ordered, name-keyed collection of workloads.
pub struct AppRegistry {
    apps: Vec<AnyApp>,
}

impl AppRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        AppRegistry { apps: Vec::new() }
    }

    /// The paper's four MLDM applications (Section IV), in the paper's
    /// order — the default app set for figure reproduction.
    pub fn standard() -> Self {
        let mut r = AppRegistry::new();
        r.register(AnyApp::pagerank());
        r.register(AnyApp::coloring());
        r.register(AnyApp::connected_components());
        r.register(AnyApp::triangle_count());
        r
    }

    /// All six workloads: the paper's four plus the SSSP (source
    /// [`SSSP_DEFAULT_SOURCE`]) and k-core ([`KCORE_DEFAULT_K`])
    /// extensions.
    pub fn full() -> Self {
        let mut r = AppRegistry::standard();
        r.register(AnyApp::sssp(SSSP_DEFAULT_SOURCE));
        r.register(AnyApp::kcore(KCORE_DEFAULT_K));
        r
    }

    /// Add a workload; a same-named entry is replaced in place (so
    /// `register(AnyApp::sssp(42))` re-parameterizes the default).
    pub fn register(&mut self, app: AnyApp) {
        match self.apps.iter_mut().find(|a| a.name() == app.name()) {
            Some(slot) => *slot = app,
            None => self.apps.push(app),
        }
    }

    /// Look up a workload by its stable name.
    pub fn get(&self, name: &str) -> Option<&AnyApp> {
        self.apps.iter().find(|a| a.name() == name)
    }

    /// The registered workloads, in registration order.
    pub fn apps(&self) -> &[AnyApp] {
        &self.apps
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.apps.iter().map(|a| a.name()).collect()
    }
}

impl Default for AppRegistry {
    fn default() -> Self {
        AppRegistry::standard()
    }
}

/// The paper's application set ([`AppRegistry::standard`], as a `Vec`).
pub fn standard_apps() -> Vec<AnyApp> {
    AppRegistry::standard().apps.clone()
}

/// All six workloads ([`AppRegistry::full`], as a `Vec`).
pub fn full_apps() -> Vec<AnyApp> {
    AppRegistry::full().apps.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_cluster::Cluster;
    use hetgraph_gen::PowerLawConfig;
    use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};

    #[test]
    fn names_and_profiles_consistent() {
        for app in full_apps() {
            assert_eq!(app.name(), app.profile().name);
            app.profile().assert_valid();
        }
    }

    #[test]
    fn registry_sets_have_expected_names() {
        assert_eq!(
            AppRegistry::standard().names(),
            [
                "pagerank",
                "coloring",
                "connected_components",
                "triangle_count"
            ]
        );
        assert_eq!(
            AppRegistry::full().names(),
            [
                "pagerank",
                "coloring",
                "connected_components",
                "triangle_count",
                "sssp",
                "kcore"
            ]
        );
    }

    #[test]
    fn pagerank_f32_is_opt_in_only() {
        // The reduced-precision program must never leak into the default
        // registries (its reports would silently diverge from the f64
        // snapshots), but explicit registration works like any other app.
        assert!(AppRegistry::standard().get("pagerank_f32").is_none());
        assert!(AppRegistry::full().get("pagerank_f32").is_none());
        let mut r = AppRegistry::full();
        r.register(AnyApp::pagerank_f32());
        let app = r.get("pagerank_f32").expect("registered");
        assert_eq!(app.name(), app.profile().name);
        app.profile().assert_valid();
        let g = PowerLawConfig::new(800, 2.1).generate(3);
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let rep = app.run(&SimEngine::new(&cluster), &g, &a);
        assert_eq!(rep.app, "pagerank_f32");
        assert!(rep.makespan_s > 0.0);
    }

    #[test]
    fn register_replaces_same_name_in_place() {
        let mut r = AppRegistry::full();
        let before = r.names();
        r.register(AnyApp::sssp(7));
        assert_eq!(r.names(), before, "re-registration keeps order");
        assert!(r.get("sssp").is_some());
        assert!(r.get("no_such_app").is_none());
    }

    #[test]
    fn all_six_run_on_a_power_law_graph() {
        let g = PowerLawConfig::new(800, 2.1).generate(3);
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        for app in full_apps() {
            let rep = app.run(&engine, &g, &a);
            assert!(rep.makespan_s > 0.0, "{app}: no time simulated");
            assert!(rep.supersteps > 0, "{app}: no supersteps");
            assert_eq!(rep.app, app.name());
        }
    }

    #[test]
    fn profiles_are_microarchitecturally_diverse() {
        // The Fig 2 premise: the four apps must not share one profile.
        let ratios: Vec<f64> = standard_apps()
            .iter()
            .map(|a| {
                let p = a.profile();
                p.edge_flops / p.edge_bytes
            })
            .collect();
        // PageRank is the most memory-bound; TriangleCount the least.
        assert!(ratios[0] < ratios[1]);
        assert!(ratios[0] < ratios[2]);
        assert!(ratios[3] > ratios[1]);
    }

    #[test]
    fn display_and_equality_key_on_name() {
        assert_eq!(AnyApp::pagerank().to_string(), "pagerank");
        assert_eq!(AnyApp::sssp(0), AnyApp::sssp(99), "equality is by name");
        assert_ne!(AnyApp::sssp(0), AnyApp::kcore(3));
        assert_eq!(format!("{:?}", AnyApp::kcore(3)), "AnyApp(\"kcore\")");
    }

    #[test]
    fn rebalanced_dispatch_runs_all_apps_deterministically() {
        use hetgraph_engine::GreedyRebalance;
        let g = PowerLawConfig::new(800, 2.1).generate(3);
        let cluster = Cluster::case2();
        // A maximally skewed start so the greedy policy has something to
        // look at (whether it migrates here depends on amortization).
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0; g.num_edges()]);
        let engine = SimEngine::new(&cluster);
        for app in full_apps() {
            let mut p1 = GreedyRebalance::new();
            let r1 = app.run_rebalanced_with_threads(&engine, &g, &a, 1, &mut p1);
            assert_eq!(r1.app, app.name());
            assert!(r1.makespan_s > 0.0, "{app}: no time simulated");
            for threads in [2, 4] {
                let mut p = GreedyRebalance::new();
                let r = app.run_rebalanced_with_threads(&engine, &g, &a, threads, &mut p);
                assert_eq!(
                    r, r1,
                    "{app}/{threads}: rebalanced run must be thread-invariant"
                );
                assert_eq!(p.events().len(), p1.events().len(), "{app}/{threads}");
            }
        }
    }

    #[test]
    fn compact_dispatch_matches_plain_run_exactly() {
        let g = PowerLawConfig::new(800, 2.1).generate(3);
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        let dist = DistributedGraph::new(&g, &a).expect("assignment covers graph");
        let compact = CompactDistGraph::from_dist(&dist);
        for app in full_apps() {
            let plain = app.run(&engine, &g, &a);
            for threads in [1, 2, 4] {
                let rep = app.run_compact_on_with_threads(&engine, &compact, threads);
                assert_eq!(rep, plain, "{app}/{threads}");
            }
        }
    }

    #[test]
    fn threaded_dispatch_matches_serial_run_exactly() {
        let g = PowerLawConfig::new(800, 2.1).generate(3);
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        for app in full_apps() {
            let serial = app.run(&engine, &g, &a);
            for threads in [1, 2, 4] {
                let par = app.run_with_threads(&engine, &g, &a, threads);
                assert_eq!(par, serial, "{app}/{threads}");
            }
        }
    }
}
