//! k-core decomposition membership (extension beyond the paper's four).
//!
//! Iterative peeling: a vertex leaves the k-core when fewer than `k` of
//! its (in + out) neighbors remain alive; removals cascade until a fixed
//! point. The surviving vertices are exactly the k-core. The active set
//! shrinks monotonically, exercising the engine's convergence path from
//! the opposite direction of SSSP's growing frontier.

use hetgraph_cluster::AppProfile;
use hetgraph_core::{GraphMeta, VertexId};
use hetgraph_engine::{Direction, GasProgram};

/// k-core membership program.
#[derive(Debug, Clone)]
pub struct KCore {
    k: u32,
}

impl KCore {
    /// Membership in the `k`-core.
    ///
    /// # Panics
    /// Panics if `k == 0` (everything is trivially in the 0-core).
    pub fn new(k: u32) -> Self {
        assert!(k > 0, "k must be positive");
        KCore { k }
    }

    /// The configured k.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Ground-truth hardware profile: like CC but with even lighter
    /// per-edge arithmetic.
    pub fn standard_profile() -> AppProfile {
        AppProfile {
            name: "kcore".into(),
            edge_flops: 30.0,
            edge_bytes: 40.0,
            vertex_flops: 15.0,
            vertex_bytes: 8.0,
            serial_fraction: 0.05,
            parallel_exponent: 1.0,
            skew_sensitivity: 0.3,
            relief_floor: 0.85,
            relief_ref_degree: 10.0,
        }
    }

    /// Vertices remaining in the core for a final labeling.
    pub fn members(data: &[bool]) -> Vec<VertexId> {
        data.iter()
            .enumerate()
            .filter(|(_, &alive)| alive)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

impl GasProgram for KCore {
    type VertexData = bool;
    type Accum = u32;

    fn name(&self) -> &'static str {
        "kcore"
    }

    fn profile(&self) -> AppProfile {
        Self::standard_profile()
    }

    fn init(&self, _graph: &GraphMeta<'_>, _v: VertexId) -> bool {
        true
    }

    fn gather_direction(&self) -> Direction {
        Direction::Both
    }

    fn gather(
        &self,
        _graph: &GraphMeta<'_>,
        data: &[bool],
        _v: VertexId,
        u: VertexId,
    ) -> (Option<u32>, f64) {
        (Some(data[u as usize] as u32), 1.0)
    }

    fn sum(&self, a: u32, b: u32) -> u32 {
        a + b
    }

    fn apply(
        &self,
        _graph: &GraphMeta<'_>,
        _v: VertexId,
        old: &bool,
        acc: Option<u32>,
        _superstep: usize,
    ) -> (bool, bool) {
        if !old {
            return (false, false);
        }
        let alive_neighbors = acc.unwrap_or(0);
        if alive_neighbors < self.k {
            (false, true)
        } else {
            (true, false)
        }
    }

    fn scatter_direction(&self) -> Direction {
        Direction::Both
    }

    fn max_supersteps(&self) -> usize {
        1_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::kcore_ref;
    use hetgraph_cluster::Cluster;
    use hetgraph_core::{Edge, EdgeList, Graph};
    use hetgraph_engine::SimEngine;
    use hetgraph_partition::{Hybrid, MachineWeights, Partitioner};

    fn run(g: &Graph, k: u32) -> Vec<bool> {
        let cluster = Cluster::case2();
        let a = Hybrid::new().partition(g, &MachineWeights::uniform(2));
        let out = SimEngine::new(&cluster).run(g, &a, &KCore::new(k));
        assert!(out.report.converged);
        out.data
    }

    fn clique_plus_tail() -> Graph {
        // K4 on {0..3} plus a path 3-4-5 hanging off.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u < v {
                    edges.push(Edge::new(u, v));
                }
            }
        }
        edges.push(Edge::new(3, 4));
        edges.push(Edge::new(4, 5));
        Graph::from_edge_list(EdgeList::from_edges(6, edges))
    }

    #[test]
    fn three_core_is_the_clique() {
        let alive = run(&clique_plus_tail(), 3);
        assert_eq!(alive, vec![true, true, true, true, false, false]);
        assert_eq!(KCore::members(&alive), vec![0, 1, 2, 3]);
    }

    #[test]
    fn one_core_keeps_everything_with_edges() {
        let alive = run(&clique_plus_tail(), 1);
        assert!(alive.iter().all(|&a| a));
    }

    #[test]
    fn huge_k_empties_the_graph() {
        let alive = run(&clique_plus_tail(), 10);
        assert!(alive.iter().all(|&a| !a));
    }

    #[test]
    fn peeling_cascades() {
        // A path: 2-core is empty, but only after the cascade peels from
        // both ends inward.
        let n = 50u32;
        let edges = (0..n - 1).map(|v| Edge::new(v, v + 1)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let alive = run(&g, 2);
        assert!(alive.iter().all(|&a| !a));
    }

    #[test]
    fn matches_reference() {
        let n = 200u32;
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push(Edge::new(v, (v * 3 + 1) % n));
            if v % 2 == 0 {
                edges.push(Edge::new(v, (v * 7 + 5) % n));
            }
        }
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        for k in [1, 2, 3] {
            assert_eq!(run(&g, k), kcore_ref(&g, k), "k = {k}");
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        KCore::new(0);
    }
}
