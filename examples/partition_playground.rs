//! Partitioner playground: compare replication factor and weighted balance
//! of all five algorithms on graphs of very different character, under
//! uniform and skewed machine weights.
//!
//! ```sh
//! cargo run --release --example partition_playground
//! ```

use hetgraph::gen::{structured, uniform};
use hetgraph::prelude::*;

fn main() {
    let graphs: Vec<(&str, hetgraph::core::Graph)> = vec![
        (
            "power_law(a=2.0)",
            PowerLawConfig::new(30_000, 2.0).generate(1),
        ),
        (
            "rmat_natural",
            RmatConfig::natural(30_000, 240_000).generate(2),
        ),
        ("uniform_gnm", uniform::gnm(30_000, 240_000, 3)),
        ("grid_200x150", structured::grid(200, 150)),
    ];

    for (weights_name, weights) in [
        ("uniform x4", MachineWeights::uniform(4)),
        (
            "CCR 1:2:3:4",
            MachineWeights::from_ccr(&[1.0, 2.0, 3.0, 4.0]),
        ),
    ] {
        println!("== weights: {weights_name} ==");
        println!(
            "{:18} {:10} {:>6} {:>10} {:>12} {:>12}",
            "graph", "algorithm", "rf", "mirrors", "max_nl", "balance_err"
        );
        for (gname, graph) in &graphs {
            for kind in PartitionerKind::ALL {
                let assignment = kind.build().partition(graph, &weights);
                let m = PartitionMetrics::compute(&assignment, &weights);
                println!(
                    "{:18} {:10} {:>6.2} {:>10} {:>12.3} {:>12.3}",
                    gname,
                    kind.name(),
                    m.replication_factor,
                    m.total_mirrors,
                    m.max_normalized_load,
                    m.weighted_balance_error
                );
            }
        }
        println!();
    }
    println!(
        "Reading: mixed cuts (hybrid/ginger) shine on skewed graphs; on the\n\
         regular grid every algorithm replicates little; random hash always\n\
         balances best but replicates most."
    );
}
