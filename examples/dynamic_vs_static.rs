//! Static proxy profiling vs dynamic (Mizan-style) migration.
//!
//! The paper argues that a good *static* capability estimate removes the
//! need for dynamic load rebalancing. This example runs the feedback
//! balancer — which migrates load between epochs based on observed
//! imbalance — from three different starting points and shows how many
//! expensive re-ingest epochs each needs.
//!
//! ```sh
//! cargo run --release --example dynamic_vs_static
//! ```

use hetgraph::prelude::*;

fn main() {
    let cluster = Cluster::case2();
    let graph = NaturalGraph::Citation.generate(256);
    println!(
        "cluster: {} + {} | workload: citation stand-in ({} vertices, {} edges)\n",
        cluster.machines()[0].name,
        cluster.machines()[1].name,
        graph.num_vertices(),
        graph.num_edges(),
    );

    let pool = CcrPool::profile(&cluster, &ProxySet::standard(640), &standard_apps());
    let app = AnyApp::pagerank();
    let balancer = FeedbackBalancer::default();

    let starts: Vec<(&str, MachineWeights)> = vec![
        ("default (uniform)", MachineWeights::uniform(cluster.len())),
        (
            "prior work (threads)",
            MachineWeights::from_thread_counts(&cluster),
        ),
        (
            "ccr-guided (ours)",
            MachineWeights::from_ccr(pool.ccr(app.name()).expect("profiled").ratios()),
        ),
    ];

    for (name, weights) in starts {
        println!("starting from {name}:");
        let history = balancer.run(&cluster, &graph, &app, &RandomHash::new(), weights);
        for epoch in &history {
            let w: Vec<String> = epoch.weights.iter().map(|x| format!("{x:.2}")).collect();
            println!(
                "  epoch {}: weights [{}]  makespan {:.4}s  imbalance {:.2}",
                epoch.epoch,
                w.join(", "),
                epoch.makespan_s,
                epoch.imbalance
            );
        }
        match FeedbackBalancer::epochs_to_balance(&history, 1.25) {
            Some(0) => println!("  -> balanced from the start; no migration needed\n"),
            Some(e) => println!("  -> needed {e} migration epoch(s)\n"),
            None => println!("  -> never reached balance within the budget\n"),
        }
    }
    println!(
        "Reading: dynamic migration eventually fixes any starting point, but\n\
         each epoch re-ingests the graph; proxy-profiled CCR weights start\n\
         balanced and skip that cost entirely — the paper's core argument."
    );
}
