//! Quickstart: profile a heterogeneous cluster with synthetic proxies,
//! partition a graph by the resulting CCR, and run PageRank.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hetgraph::prelude::*;

fn main() {
    // 1. A heterogeneous cluster: one tiny ARM-class node (4 HW threads
    //    at 1.8 GHz) and one beefy Xeon L (12 HW threads at 2.5 GHz) — the
    //    paper's Case 3. Thread counts alone say 1:5; the frequency and
    //    memory-system gap pushes the real ratio past 1:6, which is
    //    invisible to configuration-reading schedulers.
    let cluster = Cluster::case3();
    println!(
        "cluster: {} ({} threads) + {} ({} threads)",
        cluster.machines()[0].name,
        cluster.machines()[0].computing_threads(),
        cluster.machines()[1].name,
        cluster.machines()[1].computing_threads(),
    );

    // 2. Profile it ONCE with synthetic power-law proxy graphs
    //    (Section III of the paper). `scale` shrinks the paper's 3.2M-vertex
    //    proxies to laptop size; the CCRs barely move (see the
    //    `ablation::proxy_size` experiment).
    let proxies = ProxySet::standard(320); // 10k-vertex proxies
    let pool = CcrPool::profile(&cluster, &proxies, &standard_apps());
    for set in pool.iter() {
        println!("profiled CCR[{:22}] = 1 : {:.2}", set.app(), set.spread());
    }

    // 3. A workload arrives: here a dense synthetic power-law graph
    //    standing in for a freshly downloaded natural graph (the degree
    //    cap keeps its hub size natural-graph-like; an uncapped clean
    //    power law at this vertex count would be one giant star).
    let graph = PowerLawConfig::new(20_000, 1.95)
        .with_max_degree(600)
        .generate(7);
    println!(
        "\ninput graph: {} vertices, {} edges (alpha fitted from counts: {:.2})",
        graph.num_vertices(),
        graph.num_edges(),
        fit_alpha(graph.num_vertices() as u64, graph.num_edges() as u64)
            .expect("fittable")
            .alpha,
    );

    // 4. Partition it three ways and compare the simulated runtimes of
    //    Connected Components (the compute-bound workload where capability
    //    mis-estimates translate directly into barrier time; see
    //    `exp_fig10` for the full four-application comparison).
    let engine = SimEngine::new(&cluster);
    let ccr = pool.ccr("connected_components").expect("profiled above");
    let candidates: [(&str, MachineWeights); 3] = [
        ("default (uniform)", MachineWeights::uniform(cluster.len())),
        (
            "prior work (threads)",
            MachineWeights::from_thread_counts(&cluster),
        ),
        ("ccr-guided (ours)", MachineWeights::from_ccr(ccr.ratios())),
    ];
    println!();
    let mut baseline = None;
    for (name, weights) in candidates {
        // Random hash spreads edges at the finest grain, so realized loads
        // track the target weights tightly — the cleanest first look at the
        // three policies. Try `Hybrid::new()` or `Ginger::new()` for the
        // lower-replication mixed cuts.
        let assignment = RandomHash::new().partition(&graph, &weights);
        let outcome = engine.run(&graph, &assignment, &ConnectedComponents::new());
        let t = outcome.report.makespan_s;
        let base = *baseline.get_or_insert(t);
        println!(
            "{name:22} -> {:.4}s  (speedup over default: {:.2}x, energy {:.1} J)",
            t,
            base / t,
            outcome.report.total_energy_j(),
        );
    }
}
