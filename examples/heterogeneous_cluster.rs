//! End-to-end heterogeneous-cluster walkthrough: all four MLDM
//! applications on all five partitioners across the three policies, on the
//! paper's Case 3 cluster (tiny ARM-like node + big Xeon).
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```

use hetgraph::prelude::*;

fn main() {
    let cluster = Cluster::case3();
    println!(
        "Case 3 cluster: {} (4 threads @ {:.1} GHz) + {} (12 threads @ {:.1} GHz)\n",
        cluster.machines()[0].name,
        cluster.machines()[0].freq_ghz,
        cluster.machines()[1].name,
        cluster.machines()[1].freq_ghz,
    );

    // Offline profiling (one representative per machine type).
    let pool = CcrPool::profile(&cluster, &ProxySet::standard(640), &standard_apps());

    // Prior work's view of the same cluster: thread counts only. It cannot
    // see the frequency difference at all.
    let prior = PriorWorkEstimator::new().estimate(&cluster);
    println!("prior-work estimate (app-blind): 1 : {:.1}", prior.spread());
    for set in pool.iter() {
        println!(
            "proxy-profiled CCR[{:22}] = 1 : {:.2}",
            set.app(),
            set.spread()
        );
    }
    println!();

    // The workload: the paper's wiki stand-in, scaled down.
    let graph = NaturalGraph::Wiki.generate(128);
    println!(
        "workload: wiki stand-in, {} vertices / {} edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    let engine = SimEngine::new(&cluster);
    println!(
        "{:22} {:10} {:>12} {:>12} {:>9}",
        "app", "partition", "default_s", "ccr_s", "speedup"
    );
    for app in standard_apps() {
        let ccr = pool.ccr(app.name()).expect("profiled");
        for kind in PartitionerKind::ALL {
            let partitioner = kind.build();
            let uniform = partitioner.partition(&graph, &MachineWeights::uniform(cluster.len()));
            let weighted = partitioner.partition(&graph, &MachineWeights::from_ccr(ccr.ratios()));
            let t_default = app.run(&engine, &graph, &uniform).makespan_s;
            let t_ccr = app.run(&engine, &graph, &weighted).makespan_s;
            println!(
                "{:22} {:10} {:>12.4} {:>12.4} {:>8.2}x",
                app.name(),
                kind.name(),
                t_default,
                t_ccr,
                t_default / t_ccr
            );
        }
    }

    // Bonus: the actual algorithm outputs are real, not mocked — count the
    // connected components the engine just computed.
    let assignment = Hybrid::new().partition(&graph, &MachineWeights::uniform(cluster.len()));
    let outcome = engine.run(&graph, &assignment, &ConnectedComponents::new());
    let sizes = ConnectedComponents::component_sizes(&outcome.data);
    println!(
        "\nconnected components: {} total, largest has {} vertices",
        sizes.len(),
        sizes.first().map(|s| s.1).unwrap_or(0)
    );
}
