//! Cost-efficiency exploration of EC2 instance types (the paper's
//! Section V-C use case): which machine should a cloud user rent for
//! graph work?
//!
//! ```sh
//! cargo run --release --example cost_explorer
//! ```

use hetgraph::cost::CostStudy;
use hetgraph::prelude::*;

fn main() {
    // Candidate machines straight from Table I.
    let baseline = catalog::c4_xlarge();
    let machines = vec![
        catalog::c4_xlarge(),
        catalog::c4_2xlarge(),
        catalog::m4_2xlarge(),
        catalog::r3_2xlarge(),
        catalog::c4_4xlarge(),
        catalog::c4_8xlarge(),
    ];

    // No workload needs to run on any of them: synthetic-proxy profiling
    // predicts both speedup and cost per task.
    let study = CostStudy::from_profiling(
        &baseline,
        &machines,
        &standard_apps(),
        &ProxySet::standard(640),
    );

    println!(
        "{:22} {:12} {:>9} {:>16}",
        "app", "machine", "speedup", "rel_cost/task"
    );
    for p in &study.points {
        println!(
            "{:22} {:12} {:>8.2}x {:>16.3}",
            p.app, p.machine, p.speedup, p.relative_cost
        );
    }

    println!("\nPareto-optimal choices per application:");
    for app in standard_apps() {
        let frontier: Vec<String> = study
            .pareto_for_app(app.name())
            .iter()
            .map(|p| format!("{} ({:.2}x, {:.2}c)", p.machine, p.speedup, p.relative_cost))
            .collect();
        println!("  {:22} {}", app.name(), frontier.join("  "));
    }

    println!("\nMean relative cost per task across the four applications:");
    for m in &machines {
        if let Some(c) = study.mean_cost_for_machine(&m.name) {
            let bar = "#".repeat((c * 40.0).round() as usize);
            println!("  {:12} {:>6.3}  {bar}", m.name, c);
        }
    }
    println!(
        "\nReading: c4.8xlarge charges a premium that saturating graph\n\
         workloads cannot convert into speed — exactly the paper's Fig 11."
    );
}
