//! # hetgraph
//!
//! Proxy-guided load balancing of graph processing workloads on
//! heterogeneous clusters — a Rust reproduction of Song et al., ICPP 2016.
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! - [`core`] — graph substrate (CSR graphs, deterministic RNG, IO).
//! - [`gen`] — synthetic graph generation: power-law proxies (Algorithm 1),
//!   the α Newton solver (Eq. 7), R-MAT natural-graph stand-ins (Table II).
//! - [`cluster`] — heterogeneous machine models (Table I), the roofline +
//!   Amdahl timing model, energy and network models.
//! - [`partition`] — the five partitioners (Random Hash, Oblivious, Grid,
//!   Hybrid, Ginger), each homogeneous or CCR-weighted.
//! - [`engine`] — a PowerGraph-like Gather-Apply-Scatter engine over a
//!   simulated heterogeneous cluster.
//! - [`apps`] — PageRank, Coloring, Connected Components, Triangle Count
//!   (and extensions) as vertex programs.
//! - [`profile`] — proxy profiling, the CCR pool, prior-work estimators and
//!   accuracy evaluation.
//! - [`cost`] — cost-per-task and Pareto analysis of cloud machines.
//! - [`serve`] — the graph-query serving layer: batched multi-source
//!   superstep waves, bounded-queue admission control, and weighted fair
//!   scheduling over one shared partitioned graph.
//!
//! ## Quickstart
//!
//! ```
//! use hetgraph::prelude::*;
//!
//! // A small heterogeneous cluster: one wimpy + one beefy machine.
//! let cluster = Cluster::case2();
//!
//! // Profile it once with synthetic power-law proxies...
//! let pool = CcrPool::profile(&cluster, &ProxySet::standard(3200), &standard_apps());
//!
//! // ...then partition a graph by the profiled CCR and run PageRank.
//! let graph = PowerLawConfig::new(2_000, 2.1).generate(7);
//! let ccr = pool.ccr("pagerank").unwrap();
//! let weights = MachineWeights::from_ccr(ccr.ratios());
//! let assignment = Hybrid::new().partition(&graph, &weights);
//! let outcome = SimEngine::new(&cluster).run(&graph, &assignment, &PageRank::new(10));
//! assert!(outcome.report.makespan_s > 0.0);
//! ```

pub mod framework;

pub use framework::{BalancePolicy, Framework, JobResult};

pub use hetgraph_apps as apps;
pub use hetgraph_cluster as cluster;
pub use hetgraph_core as core;
pub use hetgraph_cost as cost;
pub use hetgraph_engine as engine;
pub use hetgraph_gen as gen;
pub use hetgraph_partition as partition;
pub use hetgraph_profile as profile;
pub use hetgraph_serve as serve;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use hetgraph_apps::{
        full_apps, standard_apps, AnyApp, AppRegistry, AppSpec, Coloring, ConnectedComponents,
        KCore, PageRank, Sssp, TriangleCount,
    };
    pub use hetgraph_cluster::{
        catalog, AppProfile, Cluster, EnergyModel, MachineSpec, NetworkModel,
    };
    pub use hetgraph_core::obs::{
        chrome_trace, chrome_trace_sim, to_jsonl, NoopRecorder, Recorder, TraceBuffer, TraceEvent,
        TraceRecorder, NOOP,
    };
    pub use hetgraph_core::{Edge, EdgeList, Graph, GraphBuilder, MachineId, VertexId};
    pub use hetgraph_engine::{GasProgram, SimEngine, SimOutcome, SimReport};
    pub use hetgraph_gen::{
        fit_alpha, BarabasiAlbertConfig, NaturalGraph, PowerLawConfig, ProxySet, RmatConfig,
        SmallWorldConfig,
    };
    pub use hetgraph_partition::{
        Ginger, Grid, Hybrid, MachineWeights, Oblivious, PartitionMetrics, Partitioner,
        PartitionerKind, RandomHash,
    };
    pub use hetgraph_profile::{
        CcrMaintainer, CcrPool, CcrSet, FeedbackBalancer, PriorWorkEstimator,
    };
}
