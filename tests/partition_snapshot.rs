//! Partitioner-assignment snapshot: the edge→machine vector is a contract.
//!
//! The fixture `tests/fixtures/partition_snapshot.json` pins the exact
//! `edge_machines()` of every partitioner on small frozen graphs, at
//! uniform and CCR weights and at machine counts covering the grid's
//! square/non-square arrangements. Any partitioner rewrite (streaming
//! fast paths, threading) must reproduce these vectors byte-identically —
//! partitioning feeds every downstream experiment, so a silent assignment
//! drift would invalidate all recorded results.
//!
//! The threaded entry point must agree with the fixture at every thread
//! count as well: `partition_with_threads` is pinned at 1, 2, and 4
//! host threads.
//!
//! Regenerate (only when an algorithm intentionally changes) with
//! `HETGRAPH_BLESS=1 cargo test --test partition_snapshot`, and say why
//! in the commit message.

use hetgraph::prelude::*;
use hetgraph_gen::{PowerLawConfig, RmatConfig};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/partition_snapshot.json"
);

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("rmat", RmatConfig::natural(600, 3_600).generate(11)),
        (
            "powerlaw",
            PowerLawConfig::new(500, 2.05)
                .with_max_degree(120)
                .generate(5),
        ),
    ]
}

fn weight_sets() -> Vec<(&'static str, MachineWeights)> {
    vec![
        ("uniform4", MachineWeights::uniform(4)),
        ("uniform9", MachineWeights::uniform(9)),
        ("ccr4", MachineWeights::from_ccr(&[1.0, 2.0, 3.0, 3.5])),
        ("ccr2", MachineWeights::from_ccr(&[1.0, 3.0])),
    ]
}

/// Serialize every (graph, weights, partitioner) cell's edge machines.
fn snapshot_json() -> String {
    let mut cells: Vec<(String, Vec<u16>)> = Vec::new();
    for (gname, graph) in &graphs() {
        for (wname, weights) in &weight_sets() {
            for kind in PartitionerKind::ALL {
                let a = kind.build().partition(graph, weights);
                cells.push((
                    format!("{gname}/{wname}/{}", kind.name()),
                    a.edge_machines().to_vec(),
                ));
            }
        }
    }
    serde_json::to_string_pretty(&cells).expect("assignments serialize")
}

#[test]
fn partitioner_assignments_match_snapshot() {
    if std::env::var("HETGRAPH_BLESS").is_ok() {
        let json = snapshot_json();
        std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().unwrap()).unwrap();
        std::fs::write(FIXTURE, &json).unwrap();
        println!("blessed {} bytes into {FIXTURE}", json.len());
        return;
    }
    let want = std::fs::read_to_string(FIXTURE).expect(
        "fixture missing; regenerate with HETGRAPH_BLESS=1 cargo test --test partition_snapshot",
    );
    let got = snapshot_json();
    assert!(
        got == want,
        "partitioner assignments diverged from the snapshot: first differing \
         byte at offset {:?}",
        got.bytes()
            .zip(want.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| got.len().min(want.len()))
    );
}

#[test]
fn threaded_assignments_match_snapshot_at_every_thread_count() {
    // The snapshot fixture is generated through the single-threaded entry
    // point; `partition_with_threads` must reproduce the identical full
    // `PartitionAssignment` (not just edge machines) at 1, 2, and 4 host
    // threads for every cell of the matrix.
    for (gname, graph) in &graphs() {
        for (wname, weights) in &weight_sets() {
            for kind in PartitionerKind::ALL {
                let serial = kind.build().partition(graph, weights);
                for threads in [1usize, 2, 4] {
                    let threaded = kind.build().partition_with_threads(graph, weights, threads);
                    assert_eq!(
                        serial,
                        threaded,
                        "{gname}/{wname}/{} diverges at {threads} threads",
                        kind.name()
                    );
                }
            }
        }
    }
}
