//! Integration tests for the query-serving layer: the per-lane identity
//! contract of merged multi-source waves (across partitioners and host
//! thread counts), admission-control behavior under overload, and
//! weighted-fair service under skewed offered load.

use hetgraph::engine::DistributedGraph;
use hetgraph::prelude::*;
use hetgraph::serve::{
    LoadGenConfig, MultiPpr, MultiSssp, QueryKind, Request, ServeConfig, ServeError, ServeQueue,
    Server,
};
use proptest::prelude::*;

/// Strategy: a random directed graph plus SSSP sources and PPR seeds
/// drawn from its vertex range.
fn arb_case() -> impl Strategy<Value = (Graph, Vec<VertexId>, Vec<VertexId>)> {
    (
        2u32..120,
        proptest::collection::vec((0u64..10_000, 0u64..10_000), 1..250),
        proptest::collection::vec(0u64..10_000, 1..4),
        proptest::collection::vec(0u64..10_000, 1..3),
    )
        .prop_map(|(n, pairs, raw_sources, raw_seeds)| {
            let edges: Vec<Edge> = pairs
                .into_iter()
                .map(|(a, b)| Edge::new((a % n as u64) as u32, (b % n as u64) as u32))
                .collect();
            let graph = Graph::from_edge_list(EdgeList::from_edges(n, edges));
            let sources = raw_sources
                .into_iter()
                .map(|s| (s % n as u64) as u32)
                .collect();
            let seeds = raw_seeds
                .into_iter()
                .map(|s| (s % n as u64) as u32)
                .collect();
            (graph, sources, seeds)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The batcher's determinism core: each lane of a merged
    /// multi-source wave is bitwise-identical to running that query
    /// solo, for every partitioner family and any host thread count.
    #[test]
    fn merged_wave_lanes_match_solo_runs((graph, sources, seeds) in arb_case()) {
        let cluster = Cluster::case2();
        let engine = SimEngine::new(&cluster);
        for kind in [
            PartitionerKind::RandomHash,
            PartitionerKind::Hybrid,
            PartitionerKind::Grid,
        ] {
            let assignment = kind.build().partition(&graph, &MachineWeights::uniform(2));
            for threads in [1usize, 2, 4] {
                let dist = DistributedGraph::new_with_threads(&graph, &assignment, threads)
                    .expect("assignment covers the graph");
                let multi = engine
                    .run_on_with_threads(&dist, &MultiSssp::new(sources.clone()), threads)
                    .data;
                for (lane, &s) in sources.iter().enumerate() {
                    let solo = engine
                        .run_on_with_threads(&dist, &Sssp::new(s), threads)
                        .data;
                    for v in 0..graph.num_vertices() as usize {
                        prop_assert!(
                            multi[v][lane] == solo[v],
                            "sssp lane {} (source {}) diverged at vertex {} \
                             ({:?}, {} threads)",
                            lane, s, v, kind, threads
                        );
                    }
                }
                let multi_ppr = engine
                    .run_on_with_threads(&dist, &MultiPpr::new(seeds.clone(), 8), threads)
                    .data;
                for (lane, &s) in seeds.iter().enumerate() {
                    let solo = engine
                        .run_on_with_threads(&dist, &MultiPpr::new(vec![s], 8), threads)
                        .data;
                    for v in 0..graph.num_vertices() as usize {
                        prop_assert!(
                            multi_ppr[v][lane].to_bits() == solo[v][0].to_bits(),
                            "ppr lane {} (seed {}) diverged at vertex {} \
                             ({:?}, {} threads)",
                            lane, s, v, kind, threads
                        );
                    }
                }
            }
        }
    }
}

fn serving_fixture() -> (Graph, Cluster) {
    (PowerLawConfig::new(800, 2.1).generate(21), Cluster::case2())
}

fn distribute<'a>(
    graph: &'a Graph,
    assignment: &'a hetgraph::partition::PartitionAssignment,
) -> DistributedGraph<'a> {
    DistributedGraph::new(graph, assignment).expect("assignment covers the graph")
}

#[test]
fn queue_full_shed_is_typed_and_leaves_batches_intact() {
    // Unit level: the typed error carries the shed context and the
    // queued requests are untouched by the rejection.
    let mut queue = ServeQueue::new(vec![1, 1], 2);
    for id in 0..2 {
        queue
            .admit(Request {
                id,
                tenant: 0,
                kind: QueryKind::Sssp { source: id as u32 },
                arrival_s: 0.0,
            })
            .unwrap();
    }
    let err = queue
        .admit(Request {
            id: 2,
            tenant: 0,
            kind: QueryKind::Sssp { source: 2 },
            arrival_s: 0.0,
        })
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::QueueFull {
            tenant: 0,
            depth: 2,
            budget: 2
        }
    );
    let batch = queue.next_batch(8).expect("two requests queued");
    let ids: Vec<u64> = batch.requests.iter().map(|r| r.id).collect();
    assert_eq!(ids, [0, 1], "the shed request must not leak into a batch");

    // End to end: under a tiny budget the server sheds, yet every
    // request it did serve returns exactly the answer a solo, unshed
    // run produces for the same query.
    let (graph, cluster) = serving_fixture();
    let assignment = Hybrid::new().partition(&graph, &MachineWeights::uniform(2));
    let dist = distribute(&graph, &assignment);
    let stream = LoadGenConfig::standard(13, 120, 0.0005).generate(graph.num_vertices());
    let mut cfg = ServeConfig::standard(2);
    cfg.queue_budget = 3;
    cfg.max_batch = 4;
    let server = Server::new(&cluster);
    let report = server.serve(&dist, &cfg, &stream);
    assert!(!report.shed.is_empty(), "a tiny budget must shed");
    assert_eq!(report.served() + report.shed.len(), 120);
    let solo_cfg = ServeConfig::standard(2);
    for completion in report.completions.iter().take(5) {
        let original = stream
            .iter()
            .find(|r| r.id == completion.id)
            .expect("completion ids come from the stream");
        let mut solo_request = original.clone();
        solo_request.arrival_s = 0.0;
        let solo = server.serve(&dist, &solo_cfg, &[solo_request]);
        assert_eq!(
            solo.completions[0].result, completion.result,
            "request {} answered differently under shedding pressure",
            completion.id
        );
    }
}

#[test]
fn skewed_offered_load_is_served_within_weight_tolerance() {
    // Two equal-weight tenants offering load 9:1. The fair scheduler
    // must serve both proportionally to what they offer — no
    // starvation, no amplification.
    let (graph, cluster) = serving_fixture();
    let assignment = Hybrid::new().partition(&graph, &MachineWeights::uniform(2));
    let dist = distribute(&graph, &assignment);
    let mut load = LoadGenConfig::standard(17, 2000, 0.002);
    load.tenant_shares = vec![9, 1];
    let stream = load.generate(graph.num_vertices());
    let offered: Vec<usize> = (0..2)
        .map(|t| stream.iter().filter(|r| r.tenant == t).count())
        .collect();
    let offered_frac = offered[0] as f64 / stream.len() as f64;
    assert!(
        (offered_frac - 0.9).abs() < 0.03,
        "load generator drifted from the 9:1 draw: {offered:?}"
    );
    let mut cfg = ServeConfig::standard(2);
    cfg.queue_budget = 4000; // admission out of the picture: pure scheduling
    let report = Server::new(&cluster).serve(&dist, &cfg, &stream);
    assert_eq!(report.served(), 2000, "nothing sheds under an open budget");
    let served_frac = report.per_tenant_served[0] as f64 / report.served() as f64;
    assert!(
        (served_frac - offered_frac).abs() < 0.01,
        "served share {served_frac:.3} drifted from offered share {offered_frac:.3}"
    );
}

#[test]
fn weighted_tenants_split_a_contended_backlog_by_stride() {
    // 9:1 *weights* under a full backlog: every batch of 10 must hand
    // nine lanes to the heavy tenant and one to the light tenant.
    let mut queue = ServeQueue::new(vec![9, 1], 400);
    for id in 0..400u64 {
        queue
            .admit(Request {
                id,
                tenant: (id % 2) as usize,
                kind: QueryKind::Sssp { source: id as u32 },
                arrival_s: 0.0,
            })
            .unwrap();
    }
    let mut served = [0u64; 2];
    while let Some(batch) = queue.next_batch(10) {
        for r in &batch.requests {
            served[r.tenant] += 1;
        }
        // While both tenants still have backlog, the cumulative split
        // tracks the 9:1 stride exactly (within one batch of rounding).
        if queue.depth(0) > 0 && queue.depth(1) > 0 {
            let ratio = served[0] as f64 / served[1].max(1) as f64;
            assert!(
                (6.0..=12.0).contains(&ratio),
                "stride drifted: served {served:?}"
            );
        }
    }
    assert_eq!(served[0] + served[1], 400, "the queue must drain fully");
}
