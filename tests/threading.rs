//! Determinism and work-dedupe contracts of the threaded sweep harness.
//!
//! The sweep layer (`run_matrix`) promises output byte-identical to a
//! serial quadruple loop at any thread count; the partition memo promises
//! one partition per distinct (graph, partitioner, weight vector). Both
//! are asserted here against a hand-written serial baseline, mirroring
//! the engine's `parallel_matches_sequential_data_exactly`.

use hetgraph_bench::cases::{profile_pool, run_matrix, run_matrix_counted, CaseRow};
use hetgraph_bench::{ExperimentContext, Policy};
use hetgraph_cluster::Cluster;
use hetgraph_core::Graph;
use hetgraph_engine::SimEngine;
use hetgraph_partition::{PartitionMetrics, PartitionerKind};
use hetgraph_profile::CcrPool;

const PARTITIONERS: [PartitionerKind; 2] = [PartitionerKind::RandomHash, PartitionerKind::Ginger];

fn fixture() -> (Cluster, CcrPool, Vec<(String, Graph)>) {
    let ctx = ExperimentContext::at_scale(2048);
    let cluster = Cluster::case2();
    let pool = profile_pool(&cluster, &ctx);
    let graphs = vec![ctx.natural_graphs().remove(0)];
    (cluster, pool, graphs)
}

/// The pre-memo, pre-threading reference: partition and simulate every
/// cell from scratch in nested-loop order.
fn serial_baseline(cluster: &Cluster, pool: &CcrPool, graphs: &[(String, Graph)]) -> Vec<CaseRow> {
    let engine = SimEngine::new(cluster);
    let mut rows = Vec::new();
    for (gname, graph) in graphs {
        for kind in PARTITIONERS {
            let partitioner = kind.build();
            for app in hetgraph::apps::standard_apps() {
                for policy in Policy::ALL {
                    let weights = policy.weights(cluster, pool, app.name());
                    let assignment = partitioner.partition(graph, &weights);
                    let metrics = PartitionMetrics::compute(&assignment, &weights);
                    let report = app.run(&engine, graph, &assignment);
                    rows.push(CaseRow {
                        app: app.name().to_string(),
                        graph: gname.clone(),
                        partitioner: kind.name().to_string(),
                        policy: policy.name().to_string(),
                        makespan_s: report.makespan_s,
                        energy_j: report.total_energy_j(),
                        replication_factor: metrics.replication_factor,
                    });
                }
            }
        }
    }
    rows
}

#[test]
fn run_matrix_is_golden_across_thread_counts() {
    let (cluster, pool, graphs) = fixture();
    let baseline = serial_baseline(&cluster, &pool, &graphs);
    for threads in [1, 2, 4] {
        let rows = run_matrix(
            &cluster,
            &pool,
            &graphs,
            &PARTITIONERS,
            &Policy::ALL,
            &hetgraph::apps::standard_apps(),
            threads,
        );
        assert_eq!(rows.len(), baseline.len(), "{threads} threads");
        for (got, want) in rows.iter().zip(&baseline) {
            // Data and counters must match exactly...
            assert_eq!(got.app, want.app, "{threads} threads");
            assert_eq!(got.graph, want.graph, "{threads} threads");
            assert_eq!(got.partitioner, want.partitioner, "{threads} threads");
            assert_eq!(got.policy, want.policy, "{threads} threads");
            assert_eq!(
                got.replication_factor, want.replication_factor,
                "{threads} threads: {}/{}/{}",
                got.app, got.partitioner, got.policy
            );
            // ...simulated seconds within floating-point re-association.
            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
            assert!(
                rel(got.makespan_s, want.makespan_s) < 1e-9,
                "{threads} threads: makespan {} vs {}",
                got.makespan_s,
                want.makespan_s
            );
            assert!(
                rel(got.energy_j, want.energy_j) < 1e-9,
                "{threads} threads: energy {} vs {}",
                got.energy_j,
                want.energy_j
            );
        }
    }
}

#[test]
fn sim_trace_bytes_are_identical_across_thread_counts() {
    // The observability determinism contract: simulated-time trace
    // events are emitted only from the engine's serial timing section,
    // so the Chrome export of the simulated timeline is byte-identical
    // at any host thread budget. (Wall-domain events are host timing
    // and legitimately vary; `chrome_trace_sim` excludes them.)
    use hetgraph::prelude::{chrome_trace_sim, TraceRecorder};
    use hetgraph_engine::DistributedGraph;

    let (cluster, pool, graphs) = fixture();
    let graph = &graphs[0].1;
    let app = hetgraph::apps::AnyApp::pagerank();
    let weights = Policy::CcrGuided.weights(&cluster, &pool, app.name());
    let traces: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let recorder = TraceRecorder::new();
            let assignment = PartitionerKind::Hybrid
                .build()
                .partition_recorded(graph, &weights, threads, &recorder);
            let dist = DistributedGraph::new_with_threads(graph, &assignment, threads)
                .expect("assignment must cover the graph");
            let engine = SimEngine::new(&cluster).with_recorder(&recorder);
            app.run_on_with_threads(&engine, &dist, threads);
            chrome_trace_sim(&recorder.take_events())
        })
        .collect();
    assert!(traces[0].contains("barrier_wait"), "trace has attribution");
    assert_eq!(traces[0], traces[1], "1 vs 2 threads");
    assert_eq!(traces[0], traces[2], "1 vs 4 threads");
}

#[test]
fn partition_memo_dedupes_shared_weight_vectors() {
    let (cluster, pool, graphs) = fixture();
    // 1 graph x 1 partitioner x 4 apps x 3 policies = 12 cells, but only
    // 6 distinct weight vectors: uniform (default), thread-count (prior),
    // and one CCR vector per app.
    let (rows, stats) = run_matrix_counted(
        &cluster,
        &pool,
        &graphs,
        &[PartitionerKind::RandomHash],
        &Policy::ALL,
        &hetgraph::apps::standard_apps(),
        2,
    );
    assert_eq!(rows.len(), 12);
    assert_eq!(stats.cells, 12);
    assert_eq!(
        stats.partitions_computed, 6,
        "partition calls must collapse to distinct weight vectors"
    );
    // A second partitioner doubles the partition work, nothing more.
    let (_, stats2) = run_matrix_counted(
        &cluster,
        &pool,
        &graphs,
        &PARTITIONERS,
        &Policy::ALL,
        &hetgraph::apps::standard_apps(),
        2,
    );
    assert_eq!(stats2.cells, 24);
    assert_eq!(stats2.partitions_computed, 12);
}
