//! Superstep-kernel snapshot: the simulated report is a contract.
//!
//! The fixture `tests/fixtures/engine_snapshot.json` was captured from the
//! serial reference engine *before* the serial and parallel loops were
//! collapsed into one kernel. The unified kernel must reproduce it
//! byte-identically — same vertex effects, same work attribution, same
//! floating-point times — at 1, 2, and 4 host threads, over a grid of
//! (graph, cluster, partitioner, app) cells with tracing enabled.
//!
//! Regenerate (only when the simulation model intentionally changes) with
//! `HETGRAPH_BLESS=1 cargo test --test engine_snapshot`, and say why in
//! the commit message.

use hetgraph::apps::{Coloring, ConnectedComponents, KCore, PageRank, Sssp, TriangleCount};
use hetgraph::prelude::*;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/engine_snapshot.json"
);

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("rmat", RmatConfig::natural(1_200, 7_200).generate(7)),
        (
            "powerlaw",
            PowerLawConfig::new(900, 2.05)
                .with_max_degree(200)
                .generate(3),
        ),
    ]
}

fn clusters() -> Vec<(&'static str, Cluster)> {
    vec![("case2", Cluster::case2()), ("case3", Cluster::case3())]
}

const PARTITIONERS: [PartitionerKind; 2] = [PartitionerKind::RandomHash, PartitionerKind::Hybrid];

/// Run every app in the grid cell at `threads` and serialize the reports.
///
/// Uses the raw `GasProgram` values (not the app registry) on purpose:
/// this pins the *kernel*, independent of any dispatch layer above it.
fn grid_json(threads: usize) -> String {
    let mut cells: Vec<(String, SimReport)> = Vec::new();
    for (gname, graph) in &graphs() {
        for (cname, cluster) in &clusters() {
            // An enabled recorder turns on per-step tracing, exactly as
            // the old `with_trace(true)` flag did; the serialized report
            // is unchanged (trace events live beside it, not inside it).
            let recorder = TraceRecorder::new();
            let engine = SimEngine::new(cluster).with_recorder(&recorder);
            for kind in PARTITIONERS {
                let assignment = kind
                    .build()
                    .partition(graph, &MachineWeights::uniform(cluster.len()));
                macro_rules! cell {
                    ($name:literal, $prog:expr) => {{
                        let prog = $prog;
                        let report = if threads == 1 {
                            engine.run(graph, &assignment, &prog).report
                        } else {
                            engine
                                .run_parallel(graph, &assignment, &prog, threads)
                                .report
                        };
                        cells.push((format!("{gname}/{cname}/{}/{}", kind.name(), $name), report));
                    }};
                }
                cell!("pagerank", PageRank::new(8));
                cell!("coloring", Coloring::new());
                cell!("connected_components", ConnectedComponents::new());
                cell!("triangle_count", TriangleCount::for_graph(graph));
                cell!("sssp", Sssp::new(0));
                cell!("kcore", KCore::new(3));
            }
        }
    }
    serde_json::to_string_pretty(&cells).expect("reports serialize")
}

#[test]
fn unified_kernel_reproduces_prerefactor_serial_reports() {
    if std::env::var("HETGRAPH_BLESS").is_ok() {
        let json = grid_json(1);
        std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().unwrap()).unwrap();
        std::fs::write(FIXTURE, &json).unwrap();
        println!("blessed {} bytes into {FIXTURE}", json.len());
        return;
    }
    let want = std::fs::read_to_string(FIXTURE).expect(
        "fixture missing; regenerate with HETGRAPH_BLESS=1 cargo test --test engine_snapshot",
    );
    for threads in [1usize, 2, 4] {
        let got = grid_json(threads);
        assert!(
            got == want,
            "superstep kernel diverged from the pre-refactor serial snapshot at \
             {threads} thread(s): first differing byte at offset {:?}",
            got.bytes()
                .zip(want.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| got.len().min(want.len()))
        );
    }
}
