//! Cross-crate contracts of the metrics subsystem.
//!
//! Three layers are pinned here, where every crate is in scope at once:
//!
//! 1. The full pipeline (CCR profiling, partitioning, the superstep
//!    kernel) run under one live registry produces a sim-domain snapshot
//!    whose JSON and Prometheus bytes are identical at any host thread
//!    count — the metrics analogue of the trace determinism contract in
//!    `tests/threading.rs`.
//! 2. The offline analyzer (`hetgraph report`'s engine) reproduces the
//!    straggler attribution the engine derived online: the histogram from
//!    an exported trace equals [`SimReport::straggler_histogram`] exactly,
//!    and the kernel's metrics agree with the report's counters.
//! 3. `serde_json::format_float` — the float formatting the snapshot
//!    byte-stability rides on. The vendored crate sits outside the
//!    workspace, so its contract is enforced here where the tier-1 gate
//!    runs it.

use hetgraph_apps::AnyApp;
use hetgraph_cluster::Cluster;
use hetgraph_core::metrics::{MetricsRegistry, MetricsSnapshot};
use hetgraph_core::obs::{to_jsonl, TraceRecorder, NOOP};
use hetgraph_core::Graph;
use hetgraph_engine::{DistributedGraph, SimEngine, TraceAnalysis};
use hetgraph_gen::{PowerLawConfig, ProxySet};
use hetgraph_partition::{MachineWeights, PartitionerKind};
use hetgraph_profile::CcrPool;

fn fixture_graph() -> Graph {
    PowerLawConfig::new(2_000, 2.1).generate(42)
}

#[test]
fn sim_metrics_snapshot_bytes_identical_across_thread_counts() {
    let graph = fixture_graph();
    let cluster = Cluster::case2();
    let app = AnyApp::pagerank();
    let snapshots: Vec<MetricsSnapshot> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let metrics = MetricsRegistry::new();
            let pool = CcrPool::profile_instrumented(
                &cluster,
                &ProxySet::standard(3200),
                std::slice::from_ref(&app),
                threads,
                &NOOP,
                &metrics,
            );
            let weights =
                MachineWeights::from_ccr(pool.ccr(app.name()).expect("just profiled").ratios());
            let assignment = PartitionerKind::Hybrid
                .build()
                .partition_instrumented(&graph, &weights, threads, &NOOP, &metrics);
            let dist = DistributedGraph::new_with_threads(&graph, &assignment, threads)
                .expect("assignment must cover the graph");
            let engine = SimEngine::new(&cluster).with_metrics(&metrics);
            app.run_on_with_threads(&engine, &dist, threads);
            metrics.snapshot_sim()
        })
        .collect();
    let json: Vec<String> = snapshots.iter().map(MetricsSnapshot::to_json).collect();
    assert!(json[0].contains("engine/superstep_makespan_s"));
    assert!(json[0].contains("partition/hybrid/edges_total"));
    assert!(json[0].contains("profile/measurement_cells_total"));
    assert_eq!(json[0], json[1], "1 vs 2 threads");
    assert_eq!(json[0], json[2], "1 vs 4 threads");
    let prom: Vec<String> = snapshots
        .iter()
        .map(MetricsSnapshot::to_prometheus)
        .collect();
    assert_eq!(prom[0], prom[1], "1 vs 2 threads (prometheus)");
    assert_eq!(prom[0], prom[2], "1 vs 4 threads (prometheus)");
    // And the JSON form survives the vendored parser byte-for-byte.
    let back = MetricsSnapshot::from_json(&json[0]).expect("snapshot parses");
    assert_eq!(back.to_json(), json[0], "parse → print is the identity");
}

#[test]
fn trace_analysis_reproduces_sim_report_stragglers() {
    let graph = fixture_graph();
    let cluster = Cluster::case3(); // two frequency domains: real stragglers
    let app = AnyApp::pagerank();
    let recorder = TraceRecorder::new();
    let metrics = MetricsRegistry::new();
    let assignment = PartitionerKind::RandomHash.build().partition_instrumented(
        &graph,
        &MachineWeights::uniform(cluster.len()),
        1,
        &recorder,
        &metrics,
    );
    let dist = DistributedGraph::new(&graph, &assignment).expect("assignment must cover the graph");
    let engine = SimEngine::new(&cluster)
        .with_recorder(&recorder)
        .with_metrics(&metrics);
    let report = app.run_on_with_threads(&engine, &dist, 1);

    let analysis = TraceAnalysis::from_jsonl(&to_jsonl(&recorder.take_events()))
        .expect("exported trace analyzes");
    // The acceptance contract: offline attribution over the exported
    // trace equals what the engine derived online, step for step.
    assert_eq!(
        analysis.straggler_histogram(),
        report.straggler_histogram(),
        "analyzer must reproduce the engine's straggler attribution"
    );
    assert_eq!(analysis.steps.len(), report.steps.len());
    assert_eq!(analysis.machines, cluster.len());
    for (got, want) in analysis.steps.iter().zip(&report.steps) {
        assert_eq!(got.straggler, want.straggler());
        assert_eq!(got.active, want.active as u64);
    }

    // The kernel's metrics agree with the report the same run produced.
    let snap = metrics.snapshot_sim();
    assert_eq!(
        snap.counter_value("engine/supersteps_total"),
        Some(report.supersteps as u64)
    );
    let makespan = snap
        .histogram("engine/superstep_makespan_s")
        .expect("kernel histogram registered");
    assert_eq!(makespan.count(), report.supersteps as u64);
    let total_active: u64 = report.steps.iter().map(|s| s.active as u64).sum();
    assert_eq!(
        snap.counter_value("engine/active_vertices_total"),
        Some(total_active)
    );

    // The rendered report names every section the CLI advertises.
    let text = analysis.render(3, Some(&snap));
    for section in [
        "per-machine barrier wait",
        "straggler supersteps",
        "critical path",
        "metrics snapshot",
        "engine/supersteps_total",
    ] {
        assert!(text.contains(section), "report must mention {section:?}");
    }
}

mod format_float {
    use serde::Value;
    use serde_json::{format_float, from_str};

    #[test]
    fn goldens_pin_the_canonical_spelling() {
        assert_eq!(format_float(0.0), "0.0");
        assert_eq!(format_float(-0.0), "-0.0");
        assert_eq!(format_float(1.0), "1.0");
        assert_eq!(format_float(-2.5), "-2.5");
        assert_eq!(format_float(16777219.625), "16777219.625");
        assert_eq!(format_float(0.1), "0.1");
        assert_eq!(format_float(1e300), "1e300");
        assert_eq!(format_float(-1.5e-8), "-1.5e-8");
        assert_eq!(format_float(5e-324), "5e-324"); // smallest subnormal
        assert_eq!(format_float(f64::MAX), "1.7976931348623157e308");
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn round_trips_random_bit_patterns() {
        let mut state = 0x5eed_cafe_f00du64;
        let mut checked = 0;
        while checked < 5_000 {
            let f = f64::from_bits(splitmix64(&mut state));
            if !f.is_finite() {
                continue; // no JSON spelling; write_float maps these to null
            }
            let text = format_float(f);
            // Shortest round-trip, bit-for-bit (including -0.0).
            assert_eq!(
                text.parse::<f64>().map(f64::to_bits),
                Ok(f.to_bits()),
                "{text:?}"
            );
            // Variant-stable: always re-parses as a float, never an int.
            assert!(
                text.contains('.') || text.contains('e'),
                "{text:?} would re-parse as an integer"
            );
            match from_str(&text).expect("canonical text parses") {
                Value::Float(g) => assert_eq!(g.to_bits(), f.to_bits(), "{text:?}"),
                other => panic!("{text:?} parsed as {other:?}, not Float"),
            }
            // print → parse → print is the identity.
            assert_eq!(format_float(text.parse::<f64>().unwrap()), text);
            checked += 1;
        }
    }

    #[test]
    fn noncanonical_spellings_converge_on_first_reprint() {
        for (spelling, canonical) in [
            ("1E5", "100000.0"),
            ("1e+5", "100000.0"),
            ("2.50", "2.5"),
            ("0.000015", "1.5e-5"),
        ] {
            let Value::Float(f) = from_str(spelling).unwrap() else {
                panic!("{spelling:?} must parse as a float");
            };
            assert_eq!(format_float(f), canonical);
            let Value::Float(g) = from_str(canonical).unwrap() else {
                panic!("{canonical:?} must parse as a float");
            };
            assert_eq!(format_float(g), canonical, "re-print is stable");
        }
    }
}
