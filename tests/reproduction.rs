//! Reproduction-shape assertions: the paper's qualitative claims must hold
//! end-to-end through the public experiment harness (at reduced scale).

use hetgraph_bench::{accuracy, cases, tables, ExperimentContext, Policy};

use hetgraph::core::stats;
use hetgraph::prelude::*;
use hetgraph_bench::cases::{profile_pool, run_matrix, speedups_over};
use hetgraph_partition::PartitionerKind;

fn ctx() -> ExperimentContext {
    ExperimentContext::at_scale(1024)
}

#[test]
fn fig2_shape_prior_overestimates_saturating_apps() {
    let points = accuracy::fig2(&ctx());
    let speed = |series: &str, machine: &str| {
        points
            .iter()
            .find(|p| p.series == series && p.machine == machine)
            .expect("point")
            .speedup
    };
    // The thread-count estimate says 17x on c4.8xlarge; no application
    // reaches it, PageRank is furthest away (Fig 2's core message).
    let est = speed("estimate", "c4.8xlarge");
    assert!(est > 16.0);
    for app in [
        "pagerank",
        "coloring",
        "connected_components",
        "triangle_count",
    ] {
        assert!(speed(app, "c4.8xlarge") < est, "{app}");
    }
    assert!(
        speed("pagerank", "c4.8xlarge") < speed("triangle_count", "c4.8xlarge"),
        "PageRank saturates below TriangleCount"
    );
}

#[test]
fn fig8_proxies_are_accurate_thread_counts_are_not() {
    let a = accuracy::fig8(&ctx(), "a");
    assert!(
        a.proxy_error_pct < 25.0,
        "within-category proxy error too high: {}",
        a.proxy_error_pct
    );
    assert!(
        a.prior_error_pct > 2.0 * a.proxy_error_pct,
        "prior ({}) must be far worse than proxy ({})",
        a.prior_error_pct,
        a.proxy_error_pct
    );
    let b = accuracy::fig8(&ctx(), "b");
    assert!(
        b.proxy_error_pct < 20.0,
        "cross-category proxy error too high: {}",
        b.proxy_error_pct
    );
}

#[test]
fn case1_ccr_beats_default_where_prior_is_blind() {
    // Case 1: equal thread counts -> prior work falls back to uniform.
    // CCR guidance still finds the microarchitectural difference.
    let ctx = ctx();
    let cluster = Cluster::case1();
    let pool = profile_pool(&cluster, &ctx);
    let graphs = ctx.natural_graphs();
    let rows = run_matrix(
        &cluster,
        &pool,
        &graphs,
        &[PartitionerKind::RandomHash, PartitionerKind::Grid],
        &[Policy::Default, Policy::CcrGuided],
        &hetgraph::apps::standard_apps(),
        ctx.threads,
    );
    let s = stats::geomean(&speedups_over(&rows, Policy::Default, Policy::CcrGuided));
    // At this reduced test scale, per-superstep barrier time dilutes the
    // ~1.2x capability gap of Case 1 (paper: 1.16x at full size; the
    // exp_fig9 harness at --scale 64 lands near 1.1x). The structural
    // signal asserted here is that CCR finds a consistent benefit where
    // prior work sees a homogeneous cluster and can find none.
    assert!(
        s > 1.01,
        "case 1 avg speedup {s} should exceed 1 (paper: 1.16x)"
    );
}

#[test]
fn case3_is_more_heterogeneous_than_case2() {
    // The paper: CCRs grow substantially when frequency heterogeneity is
    // added; Triangle Count's grows the least and stays closest to the
    // thread-count ratio.
    let ctx = ctx();
    let pool2 = profile_pool(&Cluster::case2(), &ctx);
    let pool3 = profile_pool(&Cluster::case3(), &ctx);
    for app in hetgraph::apps::standard_apps() {
        let s2 = pool2.ccr(app.name()).unwrap().spread();
        let s3 = pool3.ccr(app.name()).unwrap().spread();
        assert!(s3 > s2, "{}: case3 {s3} must exceed case2 {s2}", app.name());
    }
    let tc3 = pool3.ccr("triangle_count").unwrap().spread();
    for app in ["pagerank", "coloring", "connected_components"] {
        let s3 = pool3.ccr(app).unwrap().spread();
        assert!(
            tc3 < s3,
            "TC case3 CCR ({tc3}) stays below {app} ({s3}) — closest to the 1:5 thread ratio"
        );
    }
}

#[test]
fn table2_and_fig6_regenerate() {
    let rows = tables::table2(&ctx());
    assert_eq!(rows.len(), 7);
    let bins = tables::fig6(&ctx());
    assert!(!bins.is_empty());
}

#[test]
fn fig10_case2_full_stack_smoke() {
    // Tiny-scale smoke of the actual figure harness: orderings at this
    // scale are asserted by the bench crate's own tests; here we only
    // require the harness to run end-to-end and produce full coverage.
    let small = ExperimentContext::at_scale(4096);
    let rows = cases::fig10(&small, 2);
    // 4 graphs x 5 partitioners x 4 apps x 3 policies
    assert_eq!(rows.len(), 4 * 5 * 4 * 3);
    for r in &rows {
        assert!(r.makespan_s > 0.0);
        assert!(r.energy_j > 0.0);
    }
}
