//! End-to-end correctness: every application must produce exactly the
//! sequential reference result, on every partitioner, on every cluster
//! shape. Placement may change *when* things run, never *what* they
//! compute.

use hetgraph::apps::reference;
use hetgraph::apps::triangle_count::orient_by_degree;
use hetgraph::apps::{KCore, Sssp, TriangleCount};
use hetgraph::prelude::*;

fn workload() -> Graph {
    RmatConfig::natural(3_000, 24_000).generate(42)
}

fn clusters() -> Vec<Cluster> {
    vec![
        Cluster::case1(),
        Cluster::case2(),
        Cluster::case3(),
        Cluster::new(vec![
            catalog::c4_xlarge(),
            catalog::c4_2xlarge(),
            catalog::c4_4xlarge(),
            catalog::c4_8xlarge(),
        ]),
    ]
}

fn all_assignments(
    graph: &Graph,
    cluster: &Cluster,
) -> Vec<(String, hetgraph::partition::PartitionAssignment)> {
    let mut out = Vec::new();
    for kind in PartitionerKind::ALL {
        for (wname, weights) in [
            ("uniform", MachineWeights::uniform(cluster.len())),
            ("threads", MachineWeights::from_thread_counts(cluster)),
        ] {
            out.push((
                format!("{}/{}", kind.name(), wname),
                kind.build().partition(graph, &weights),
            ));
        }
    }
    out
}

#[test]
fn pagerank_identical_across_all_placements() {
    let g = workload();
    let want = reference::pagerank_ref(&g, 8, hetgraph::apps::pagerank::DAMPING);
    for cluster in clusters() {
        let engine = SimEngine::new(&cluster);
        for (label, a) in all_assignments(&g, &cluster) {
            let got = engine.run(&g, &a, &PageRank::new(8)).data;
            for (v, (x, y)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (x - y).abs() < 1e-12,
                    "pagerank diverged at v{v} under {label} on {}",
                    cluster.machines()[0].name
                );
            }
        }
    }
}

#[test]
fn connected_components_identical_across_all_placements() {
    let g = workload();
    let want = reference::connected_components_ref(&g);
    for cluster in clusters() {
        let engine = SimEngine::new(&cluster);
        for (label, a) in all_assignments(&g, &cluster) {
            let out = engine.run(&g, &a, &ConnectedComponents::new());
            assert!(out.report.converged, "{label}: CC did not converge");
            assert_eq!(out.data, want, "CC labels diverged under {label}");
        }
    }
}

#[test]
fn coloring_proper_across_all_placements() {
    let g = workload();
    for cluster in clusters() {
        let engine = SimEngine::new(&cluster);
        for (label, a) in all_assignments(&g, &cluster) {
            let out = engine.run(&g, &a, &Coloring::new());
            assert!(out.report.converged, "{label}: coloring did not converge");
            assert!(
                Coloring::is_proper(&g, &out.data),
                "improper coloring under {label}"
            );
        }
    }
}

#[test]
fn triangle_count_identical_across_all_placements() {
    let g = orient_by_degree(&workload());
    let want = reference::triangle_count_ref(&workload());
    for cluster in clusters() {
        let engine = SimEngine::new(&cluster);
        let tc = TriangleCount::for_graph(&g);
        for (label, a) in all_assignments(&g, &cluster) {
            let got = TriangleCount::total(&engine.run(&g, &a, &tc).data);
            assert_eq!(got, want, "triangle count diverged under {label}");
        }
    }
}

#[test]
fn sssp_and_kcore_identical_across_placements_and_thread_counts() {
    // The extension apps must match their sequential references exactly —
    // on every partitioner/weighting, and at every host-thread budget.
    // The unified kernel makes thread count an execution detail: 1, 2 and
    // 4 workers must all produce byte-identical vertex data.
    let g = workload();
    let want_d = reference::sssp_ref(&g, 5);
    let want_k = reference::kcore_ref(&g, 3);
    let cluster = Cluster::case3();
    let engine = SimEngine::new(&cluster);
    for (label, a) in all_assignments(&g, &cluster) {
        for threads in [1, 2, 4] {
            assert_eq!(
                engine.run_with_threads(&g, &a, &Sssp::new(5), threads).data,
                want_d,
                "sssp under {label} with {threads} thread(s)"
            );
            assert_eq!(
                engine
                    .run_with_threads(&g, &a, &KCore::new(3), threads)
                    .data,
                want_k,
                "kcore under {label} with {threads} thread(s)"
            );
        }
    }
}

#[test]
fn simulation_reports_are_deterministic() {
    let g = workload();
    let cluster = Cluster::case2();
    let engine = SimEngine::new(&cluster);
    let a = Hybrid::new().partition(&g, &MachineWeights::from_ccr(&[1.0, 3.5]));
    let r1 = engine.run(&g, &a, &PageRank::new(5)).report;
    let r2 = engine.run(&g, &a, &PageRank::new(5)).report;
    assert_eq!(r1, r2);
    assert!(r1.makespan_s > 0.0);
}

#[test]
fn every_partitioner_covers_every_edge() {
    let g = workload();
    for cluster in clusters() {
        for (label, a) in all_assignments(&g, &cluster) {
            let total: usize = a.edges_per_machine().iter().sum();
            assert_eq!(total, g.num_edges(), "{label} lost edges");
            assert!(a.replication_factor() >= 1.0, "{label}");
            assert!(
                a.replication_factor() <= cluster.len() as f64,
                "{label}: rf {} exceeds machine count",
                a.replication_factor()
            );
        }
    }
}
