//! Property-based tests on the core invariants of the whole stack.

use hetgraph::core::rng::Xoshiro256;
use hetgraph::core::transform::{degree_sort_permutation, relabel};
use hetgraph::core::{io, CompactCsr, Csr, Edge, EdgeList, Graph, GraphMeta};
use hetgraph::engine::Direction;
use hetgraph::prelude::*;
use proptest::prelude::*;

/// Strategy: a random directed graph as (vertex count, edge pairs).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2u32..200,
        proptest::collection::vec((0u64..10_000, 0u64..10_000), 1..400),
    )
        .prop_map(|(n, pairs)| {
            let edges: Vec<Edge> = pairs
                .into_iter()
                .map(|(a, b)| Edge::new((a % n as u64) as u32, (b % n as u64) as u32))
                .collect();
            Graph::from_edge_list(EdgeList::from_edges(n, edges))
        })
}

/// Strategy: positive machine weights for 1..=6 machines.
fn arb_weights() -> impl Strategy<Value = MachineWeights> {
    proptest::collection::vec(0.05f64..10.0, 1..=6).prop_map(|w| MachineWeights::new(&w))
}

/// A minimal source-only GAS program (each in-neighbor contributes half its
/// value) with the per-source table opt-in as a runtime switch, so a pair of
/// runs can pin the table path against the general per-edge gather.
struct HalfRank {
    iters: usize,
    by_source: bool,
}

impl GasProgram for HalfRank {
    type VertexData = f64;
    type Accum = f64;

    fn name(&self) -> &'static str {
        "half_rank_proptest"
    }

    fn profile(&self) -> AppProfile {
        PageRank::standard_profile()
    }

    fn init(&self, _graph: &GraphMeta<'_>, v: VertexId) -> f64 {
        f64::from(v % 7) + 1.0
    }

    fn gather_direction(&self) -> Direction {
        Direction::In
    }

    fn gather(
        &self,
        _graph: &GraphMeta<'_>,
        data: &[f64],
        _v: VertexId,
        u: VertexId,
    ) -> (Option<f64>, f64) {
        (Some(data[u as usize] * 0.5), 1.0)
    }

    fn gather_by_source(&self) -> bool {
        self.by_source
    }

    fn source_gather(&self, _graph: &GraphMeta<'_>, data: &[f64], u: VertexId) -> f64 {
        data[u as usize] * 0.5
    }

    fn sum(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn apply(
        &self,
        _graph: &GraphMeta<'_>,
        _v: VertexId,
        _old: &f64,
        acc: Option<f64>,
        _superstep: usize,
    ) -> (f64, bool) {
        (acc.unwrap_or(0.0) + 0.25, true)
    }

    fn scatter_direction(&self) -> Direction {
        Direction::Out
    }

    fn max_supersteps(&self) -> usize {
        self.iters
    }
}

/// Assert one direction of [`CompactCsr`] is equivalent to its plain
/// [`Csr`]: same edge count, same per-vertex degrees, rows decode to the
/// sorted plain rows (both via the materializing decoder and the cursor),
/// and edge ranges tile `0..num_edges` in vertex order.
fn assert_compact_matches_plain(csr: &Csr, dir: &str) -> Result<(), proptest::TestCaseError> {
    let compact = CompactCsr::from_csr(csr);
    prop_assert_eq!(compact.num_vertices(), csr.num_vertices());
    prop_assert_eq!(compact.num_edges(), csr.num_edges());
    let mut cursor = 0usize;
    let mut row = Vec::new();
    for v in 0..csr.num_vertices() {
        prop_assert!(
            compact.degree(v) == csr.degree(v),
            "{} degree of {} diverged",
            dir,
            v
        );
        let (lo, hi) = compact.edge_range(v);
        prop_assert!(lo == cursor, "{} edge range of {} does not tile", dir, v);
        cursor = hi;
        let mut plain = csr.neighbors(v).to_vec();
        plain.sort_unstable();
        compact.decode_row_into(v, &mut row);
        prop_assert!(row == plain, "{} decoded row of {} diverged", dir, v);
        let iterated: Vec<VertexId> = compact.neighbors(v).collect();
        prop_assert!(iterated == plain, "{} cursor row of {} diverged", dir, v);
    }
    prop_assert_eq!(cursor, compact.num_edges());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_roundtrips_edges(g in arb_graph()) {
        // Every edge appears in the out-CSR of its source and the in-CSR
        // of its target, with multiplicity.
        let out_total: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_total: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_total, g.num_edges());
        prop_assert_eq!(in_total, g.num_edges());
        prop_assert!(g.validate());
    }

    #[test]
    fn binary_io_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        io::write_binary(&mut buf, &g).unwrap();
        let back = io::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(back.edges(), g.edges());
        prop_assert_eq!(back.num_vertices(), g.num_vertices());
    }

    #[test]
    fn partitioners_assign_every_edge_exactly_once(
        g in arb_graph(),
        w in arb_weights(),
        kind_idx in 0usize..5,
    ) {
        let kind = PartitionerKind::ALL[kind_idx];
        let a = kind.build().partition(&g, &w);
        let total: usize = a.edges_per_machine().iter().sum();
        prop_assert_eq!(total, g.num_edges());
        // Replication factor bounds.
        let rf = a.replication_factor();
        prop_assert!(rf >= 1.0 - 1e-12);
        prop_assert!(rf <= w.len() as f64 + 1e-12);
        // Every vertex with an edge has a replica; masters hold replicas.
        for v in g.vertices() {
            if g.degree(v) > 0 {
                prop_assert!(a.replica_count(v) >= 1);
                prop_assert!(a.has_replica(v, a.master(v)));
            }
        }
    }

    #[test]
    fn partitioning_is_deterministic(
        g in arb_graph(),
        w in arb_weights(),
        kind_idx in 0usize..5,
    ) {
        let kind = PartitionerKind::ALL[kind_idx];
        let a = kind.build().partition(&g, &w);
        let b = kind.build().partition(&g, &w);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn machine_weight_shares_sum_to_one(w in arb_weights()) {
        // Whatever raw capacities went in, the normalized shares form a
        // probability distribution.
        let total: f64 = w.as_slice().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "shares sum to {}", total);
        prop_assert!(w.as_slice().iter().all(|&s| s > 0.0));
    }

    #[test]
    fn partitioning_is_thread_count_invariant(
        g in arb_graph(),
        w in arb_weights(),
        kind_idx in 0usize..5,
    ) {
        // The full PartitionAssignment — edge machines, masters, replica
        // masks, per-machine loads — must be byte-identical at any host
        // thread budget, for every partitioner.
        let kind = PartitionerKind::ALL[kind_idx];
        let serial = kind.build().partition_with_threads(&g, &w, 1);
        for threads in [2usize, 4] {
            let par = kind.build().partition_with_threads(&g, &w, threads);
            prop_assert_eq!(&serial, &par);
        }
    }

    #[test]
    fn partition_metrics_thread_count_invariant(
        g in arb_graph(),
        w in arb_weights(),
        kind_idx in 0usize..5,
    ) {
        let a = PartitionerKind::ALL[kind_idx].build().partition(&g, &w);
        let serial = PartitionMetrics::compute(&a, &w);
        for threads in [2usize, 4] {
            let par = PartitionMetrics::compute_with_threads(&a, &w, threads);
            prop_assert_eq!(&serial, &par);
        }
    }

    #[test]
    fn weighted_pick_is_total_and_stable(w in arb_weights(), h in any::<u64>()) {
        let m = w.pick(h);
        prop_assert!(m.index() < w.len());
        prop_assert_eq!(m, w.pick(h));
    }

    #[test]
    fn alpha_fit_inverts_expected_degree(alpha in 1.3f64..3.0) {
        // For any alpha in the natural band, fitting from the distribution's
        // own expected density must recover it.
        let d_max = 5_000usize;
        let mean = hetgraph::gen::alpha::expected_avg_degree(alpha, d_max);
        let n = 10_000_000u64;
        let m = (mean * n as f64) as u64;
        let fit = hetgraph::gen::alpha::fit_alpha_with_support(n, m, d_max).unwrap();
        prop_assert!((fit.alpha - alpha).abs() < 0.02, "{} vs {}", fit.alpha, alpha);
    }

    #[test]
    fn powerlaw_generator_edge_count_tracks_expectation(
        // α > 2 keeps the degree variance finite; below that the edge count
        // of a single sample legitimately swings by integer factors (the
        // α = 1.95 regime is covered by the looser smoke property below).
        alpha in 2.05f64..2.6,
        seed in any::<u64>(),
    ) {
        let cfg = PowerLawConfig::new(5_000, alpha);
        let g = cfg.generate(seed);
        let expected = cfg.expected_edges();
        // Even with finite variance, a single hub draw can add tens of
        // percent at this vertex count, so the upper bound is checked with
        // the largest out-degree excluded.
        let d_max_out = g.vertices().map(|v| g.out_degree(v)).max().unwrap_or(0) as f64;
        let trimmed = g.num_edges() as f64 - d_max_out;
        prop_assert!(
            trimmed <= expected * 1.5,
            "trimmed edges {} vs expected {}",
            trimmed,
            expected
        );
        prop_assert!(
            g.num_edges() as f64 >= expected * 0.6,
            "edges {} vs expected {}",
            g.num_edges(),
            expected
        );
        prop_assert!(g.validate());
    }

    #[test]
    fn powerlaw_generator_heavy_tail_regime_stays_sane(
        alpha in 1.8f64..2.05,
        seed in any::<u64>(),
    ) {
        // Infinite-variance regime: only order-of-magnitude bounds hold
        // per sample.
        let cfg = PowerLawConfig::new(5_000, alpha);
        let g = cfg.generate(seed);
        let expected = cfg.expected_edges();
        prop_assert!(g.num_edges() as f64 >= expected * 0.5);
        prop_assert!(g.num_edges() as f64 <= expected * 8.0);
        prop_assert!(g.validate());
    }

    #[test]
    fn ccr_sets_normalize_to_slowest(times in proptest::collection::vec(0.01f64..100.0, 1..8)) {
        let set = CcrSet::from_times("t", &times);
        let min = set.ratios().iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!((min - 1.0).abs() < 1e-12);
        prop_assert_eq!(set.ratios().len(), times.len());
    }

    #[test]
    fn engine_results_survive_weight_changes(
        g in arb_graph(),
        w in arb_weights(),
    ) {
        // Changing weights changes placement, never CC results.
        prop_assume!(w.len() >= 2);
        let machines: Vec<_> = (0..w.len())
            .map(|i| if i % 2 == 0 { catalog::xeon_s() } else { catalog::xeon_l() })
            .collect();
        let cluster = Cluster::new(machines);
        let engine = SimEngine::new(&cluster);
        let uniform = RandomHash::new().partition(&g, &MachineWeights::uniform(w.len()));
        let skewed = RandomHash::new().partition(&g, &w);
        let a = engine.run(&g, &uniform, &ConnectedComponents::new()).data;
        let b = engine.run(&g, &skewed, &ConnectedComponents::new()).data;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn engine_output_is_thread_count_invariant(
        g in arb_graph(),
        w in arb_weights(),
    ) {
        // The kernel's speed machinery — hybrid frontier extraction, the
        // per-source contribution table, in-place vs staged apply, pooled
        // chunks — must never leak into results: the full SimReport JSON
        // and the final vertex data are byte-identical at any host thread
        // budget, for a table-mode app (PageRank), a sparse-frontier app
        // (SSSP), and a shrinking-frontier app (k-core).
        prop_assume!(w.len() >= 2);
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        macro_rules! pin {
            ($prog:expr) => {{
                let prog = $prog;
                let reference = engine.run_parallel(&g, &a, &prog, 1);
                let ref_json = serde_json::to_string(&reference.report).unwrap();
                for threads in [2usize, 4] {
                    let par = engine.run_parallel(&g, &a, &prog, threads);
                    prop_assert_eq!(&par.data, &reference.data);
                    let par_json = serde_json::to_string(&par.report).unwrap();
                    prop_assert_eq!(&par_json, &ref_json);
                }
            }};
        }
        pin!(PageRank::new(4));
        pin!(Sssp::new(0));
        pin!(KCore::new(2));
    }

    #[test]
    fn source_table_gather_matches_general_gather(
        g in arb_graph(),
        iters in 1usize..6,
    ) {
        // Two copies of the same source-only program, one opting into the
        // per-source contribution table and one running the general
        // per-edge gather, must produce bit-identical data and reports —
        // the table is a pure speed heuristic.
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        let on = engine.run(&g, &a, &HalfRank { iters, by_source: true });
        let off = engine.run(&g, &a, &HalfRank { iters, by_source: false });
        prop_assert_eq!(on.data, off.data);
        prop_assert_eq!(
            serde_json::to_string(&on.report).unwrap(),
            serde_json::to_string(&off.report).unwrap()
        );
    }

    #[test]
    fn frontier_set_modes_agree_with_hashset(
        ops in proptest::collection::vec(0u32..700, 1..300),
        force_dense in any::<bool>(),
    ) {
        // Whatever extraction mode the occupancy heuristic would pick,
        // both the sparse (dirty-word) and dense (full-scan) paths must
        // produce the same sorted, deduplicated frontier — and leave the
        // set fully cleared for reuse.
        let mut fs = hetgraph::core::FrontierSet::new(700);
        let mut hs = std::collections::BTreeSet::new();
        for &i in &ops {
            fs.insert(i);
            hs.insert(i);
        }
        prop_assert_eq!(fs.len(), hs.len());
        let mut out = Vec::new();
        fs.extract_into_forced(&mut out, force_dense);
        let expect: Vec<u32> = hs.into_iter().collect();
        prop_assert_eq!(out, expect);
        prop_assert!(fs.is_empty(), "extraction must drain the set");
        // The set must be genuinely clean: a second round sees only the
        // new inserts.
        fs.insert(3);
        let mut out2 = Vec::new();
        fs.extract_into_forced(&mut out2, !force_dense);
        prop_assert_eq!(out2, vec![3u32]);
    }

    #[test]
    fn bitset_behaves_like_hashset(ops in proptest::collection::vec((0usize..500, any::<bool>()), 1..200)) {
        let mut bs = hetgraph::core::BitSet::new(500);
        let mut hs = std::collections::HashSet::new();
        for (i, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(i), hs.insert(i));
            } else {
                prop_assert_eq!(bs.remove(i), hs.remove(&i));
            }
        }
        prop_assert_eq!(bs.len(), hs.len());
        let from_bs: Vec<usize> = bs.iter().collect();
        let mut from_hs: Vec<usize> = hs.into_iter().collect();
        from_hs.sort_unstable();
        prop_assert_eq!(from_bs, from_hs);
    }

    #[test]
    fn migration_delta_metrics_match_recompute(
        g in arb_graph(),
        w in arb_weights(),
        kind_idx in 0usize..5,
        raw_batches in proptest::collection::vec(
            proptest::collection::vec((0usize..100_000, 0u16..8), 1..60),
            1..4,
        ),
    ) {
        // Folding migration deltas into a PartitionMetricsTracker must be
        // bit-identical to a from-scratch PartitionMetrics::compute of the
        // migrated assignment, for any sequence of random batches (with
        // duplicate edges and no-op moves included).
        let mut a = PartitionerKind::ALL[kind_idx].build().partition(&g, &w);
        let mut tracker = hetgraph::partition::PartitionMetricsTracker::new(&a, &w);
        for raw in raw_batches {
            let batch: Vec<(usize, u16)> = raw
                .into_iter()
                .map(|(e, m)| (e % g.num_edges(), m % w.len() as u16))
                .collect();
            let delta = a.migrate_edges(&g, &batch);
            tracker.apply_delta(&delta);
        }
        let fresh = PartitionMetrics::compute(&a, &w);
        prop_assert_eq!(tracker.metrics(), &fresh);
    }

    #[test]
    fn rebalanced_run_is_thread_count_invariant(
        g in arb_graph(),
        w in arb_weights(),
        slow_machine in 0usize..2,
    ) {
        // A rebalanced run — policy decisions, migrations, charged costs
        // and all — must produce byte-identical reports and data at any
        // host thread budget, even under a mid-run machine slowdown. An
        // eager policy (no imbalance threshold, tiny horizon-friendly
        // batches) maximizes the chance that migrations actually fire.
        let cluster = Cluster::case2();
        let skew = w.as_slice()[0];
        let a = RandomHash::new().partition(&g, &MachineWeights::new(&[skew, 1.0]));
        let schedule = hetgraph::cluster::PerturbationSchedule::new()
            .slowdown(slow_machine, 1, None, 0.25);
        let engine = SimEngine::new(&cluster).with_perturbations(&schedule);
        let prog = PageRank::new(4);
        let mut reference: Option<(String, Vec<f64>)> = None;
        for threads in [1usize, 2, 4] {
            let mut dist =
                hetgraph::engine::DistributedGraph::new(&g, &a).expect("assignment covers graph");
            let mut policy = hetgraph::engine::GreedyRebalance::new()
                .with_min_imbalance(1.0)
                .with_cooldown(1)
                .with_horizon(100);
            let out =
                engine.run_rebalanced_on_with_threads(&mut dist, &prog, threads, &mut policy);
            let json = serde_json::to_string(&out.report).unwrap();
            match &reference {
                None => reference = Some((json, out.data)),
                Some((ref_json, ref_data)) => {
                    prop_assert!(&json == ref_json, "report diverged at {} threads", threads);
                    prop_assert!(&out.data == ref_data, "data diverged at {} threads", threads);
                }
            }
        }
    }

    #[test]
    fn compact_csr_matches_plain_csr_on_random_graphs(g in arb_graph()) {
        // Both adjacency directions of the delta-varint representation
        // must be loss-free against the plain CSR they were built from.
        assert_compact_matches_plain(g.out_csr(), "out")?;
        assert_compact_matches_plain(g.in_csr(), "in")?;
    }

    #[test]
    fn compact_csr_matches_plain_csr_on_powerlaw_graphs(
        alpha in 1.9f64..2.6,
        seed in any::<u64>(),
    ) {
        // The skewed-degree regime the compression is designed for: hub
        // rows with thousands of small gaps and a long tail of tiny rows.
        let g = PowerLawConfig::new(2_000, alpha).generate(seed);
        assert_compact_matches_plain(g.out_csr(), "out")?;
        assert_compact_matches_plain(g.in_csr(), "in")?;
    }

    #[test]
    fn degree_renumbering_is_a_bijection_preserving_results(g in arb_graph()) {
        // The degree-sorted renumbering pass must be a permutation of the
        // id space that only relabels: adjacency maps through it exactly,
        // and engine results are the original's composed with the inverse
        // permutation. (The SimReport's timing side depends on placement,
        // which hashes ids, so the structural quantities — superstep count
        // and per-vertex data — are the preserved ones.)
        let perm = degree_sort_permutation(&g);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..g.num_vertices()).collect::<Vec<_>>());
        let r = relabel(&g, &perm);
        prop_assert_eq!(r.num_edges(), g.num_edges());
        for v in g.vertices() {
            let mut mapped: Vec<VertexId> =
                g.out_neighbors(v).iter().map(|&u| perm[u as usize]).collect();
            mapped.sort_unstable();
            let mut relabeled = r.out_neighbors(perm[v as usize]).to_vec();
            relabeled.sort_unstable();
            prop_assert!(mapped == relabeled, "out row of {} diverged", v);
        }
        // A structure-determined app (k-core peeling ignores ids): data
        // must satisfy new[perm[v]] == old[v] bit-for-bit, and the peel
        // takes the same number of supersteps.
        let cluster = Cluster::case2();
        let engine = SimEngine::new(&cluster);
        let weights = MachineWeights::uniform(2);
        let old = engine.run(&g, &RandomHash::new().partition(&g, &weights), &KCore::new(2));
        let new = engine.run(&r, &RandomHash::new().partition(&r, &weights), &KCore::new(2));
        prop_assert_eq!(old.report.supersteps, new.report.supersteps);
        for v in g.vertices() {
            prop_assert!(
                old.data[v as usize] == new.data[perm[v as usize] as usize],
                "data of {} diverged",
                v
            );
        }
    }

    #[test]
    fn rng_bounded_uniformity_smoke(seed in any::<u64>(), bound in 1u64..1_000) {
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_bounded(bound) < bound);
        }
    }
}
