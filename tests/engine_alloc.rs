//! Steady-state allocation gate for the superstep kernel.
//!
//! The fast path pools its chunk scratch (and the serial path reuses
//! persistent per-run buffers), so once the first superstep has sized
//! everything, further supersteps must not allocate at all. This test
//! pins that with a counting global allocator: two PageRank runs that
//! differ only in iteration count must allocate the same number of
//! times, because every allocation belongs to per-run setup (buffers
//! sized by the graph, the report) — never to a superstep.
//!
//! Lives in its own integration-test binary because `#[global_allocator]`
//! is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hetgraph_apps::PageRank;
use hetgraph_cluster::Cluster;
use hetgraph_engine::{DistributedGraph, SimEngine};
use hetgraph_gen::PowerLawConfig;
use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_supersteps_do_not_allocate() {
    let graph = PowerLawConfig::new(3_000, 2.1).generate(7);
    let cluster = Cluster::case2();
    let weights = MachineWeights::uniform(cluster.len());
    let assignment = RandomHash::new().partition(&graph, &weights);
    let dist = DistributedGraph::new(&graph, &assignment).expect("assignment must cover the graph");
    let engine = SimEngine::new(&cluster);

    // Warm up any lazily initialized process state (thread-local RNGs,
    // stdout buffers, ...) outside the measured windows.
    engine.run_on_with_threads(&dist, &PageRank::new(2), 1);

    // PageRank with tolerance 0 keeps every vertex active, so all per-run
    // buffers reach their final size during superstep 1 in both runs. Ten
    // extra supersteps must therefore be allocation-free.
    let short = allocations_during(|| {
        engine.run_on_with_threads(&dist, &PageRank::new(2), 1);
    });
    let long = allocations_during(|| {
        engine.run_on_with_threads(&dist, &PageRank::new(12), 1);
    });
    assert!(
        long <= short,
        "10 extra supersteps allocated {} extra times (short run: {short}, long run: {long})",
        long - short
    );
}

#[test]
fn pooled_parallel_path_allocations_do_not_scale_with_chunk_count() {
    // 40k vertices = ~40 gather chunks + ~40 scatter chunks per superstep.
    // Without pooling, each chunk would cost several Vec allocations every
    // step (hundreds per superstep). With pooling, the only per-step
    // allocations left are the scoped worker spawn/join bookkeeping —
    // a small constant per phase, independent of chunk count.
    let graph = PowerLawConfig::new(40_000, 2.1).generate(7);
    let cluster = Cluster::case2();
    let weights = MachineWeights::uniform(cluster.len());
    let assignment = RandomHash::new().partition(&graph, &weights);
    let dist = DistributedGraph::new(&graph, &assignment).expect("assignment must cover the graph");
    let engine = SimEngine::new(&cluster);

    engine.run_on_with_threads(&dist, &PageRank::new(2), 2);

    let short = allocations_during(|| {
        engine.run_on_with_threads(&dist, &PageRank::new(2), 2);
    });
    let long = allocations_during(|| {
        engine.run_on_with_threads(&dist, &PageRank::new(12), 2);
    });
    let extra_steps = 10;
    let per_step_budget = 80; // worker bookkeeping; unpooled chunks would need 300+
    assert!(
        long <= short + extra_steps * per_step_budget,
        "{extra_steps} extra supersteps allocated {} extra times (short run: {short}, long run: {long})",
        long.saturating_sub(short)
    );
}
